// Tests for airshed::durable — the corruption-tolerant storage layer — and
// its consumers: the framed container codec, the corruption matrix
// (truncation at every byte, single-bit flips at every offset), atomic
// writes, the checkpoint vault's newest-valid restore with quarantine, the
// storage-fault classes of FaultPlan, and vault-based model resume.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "airshed/core/executor.hpp"
#include "airshed/core/model.hpp"
#include "airshed/core/uniform_model.hpp"
#include "airshed/durable/container.hpp"
#include "airshed/durable/journal.hpp"
#include "airshed/io/dataset.hpp"
#include "airshed/io/vault.hpp"
#include "airshed/util/hash.hpp"

namespace airshed {
namespace {

namespace fs = std::filesystem;
using durable::ContainerReader;
using durable::ContainerWriter;
using durable::PayloadReader;
using durable::PayloadWriter;
using durable::StorageError;
using durable::StorageFaultKind;

/// Fresh scratch directory per test (removed on teardown).
class DurableDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("airshed_durable_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

/// A small container with several typed sections (covers every codec
/// primitive), used by the corruption-matrix tests.
std::string sample_container_bytes() {
  ContainerWriter c("airshed-test", 7);
  PayloadWriter meta;
  meta.str("hello").u32(123).u64(1ull << 40).i64(-5).f64(2.75);
  c.add_section("meta", std::move(meta).take());
  PayloadWriter data;
  data.doubles(std::vector<double>{1.0, -2.5, 3.25, 0.0});
  c.add_section("data", std::move(data).take());
  c.add_section("empty", "");
  return c.encode();
}

// ------------------------------------------------------------- container

TEST_F(DurableDir, ContainerRoundTripIsLossless) {
  const std::string p = path("sample.bin");
  durable::atomic_write_file(p, sample_container_bytes());

  const ContainerReader c = ContainerReader::read_file(p, "airshed-test");
  EXPECT_EQ(c.format(), "airshed-test");
  EXPECT_EQ(c.version(), 7u);
  ASSERT_EQ(c.section_count(), 3u);
  EXPECT_EQ(c.section(0).name, "meta");
  EXPECT_EQ(c.section(2).payload.size(), 0u);

  PayloadReader meta = c.open("meta");
  EXPECT_EQ(meta.str(), "hello");
  EXPECT_EQ(meta.u32(), 123u);
  EXPECT_EQ(meta.u64(), 1ull << 40);
  EXPECT_EQ(meta.i64(), -5);
  EXPECT_DOUBLE_EQ(meta.f64(), 2.75);
  meta.expect_end();

  PayloadReader data = c.open("data");
  std::vector<double> values;
  data.doubles(values);
  EXPECT_EQ(values, (std::vector<double>{1.0, -2.5, 3.25, 0.0}));
  data.expect_end();
}

TEST_F(DurableDir, WrongFormatTagIsRejectedWithTypedError) {
  const std::string p = path("sample.bin");
  durable::atomic_write_file(p, sample_container_bytes());
  try {
    ContainerReader::read_file(p, "airshed-archive");
    FAIL() << "format mismatch accepted";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.path(), p);
    EXPECT_EQ(e.section(), "header");
  }
}

TEST(Durable, TruncationAtEveryByteIsRejected) {
  const std::string bytes = sample_container_bytes();
  // Every proper prefix — which includes every section boundary — must be
  // rejected with a typed error, never accepted and never a crash.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(ContainerReader::parse(bytes.substr(0, len), "trunc"),
                 StorageError)
        << "truncation to " << len << " bytes was accepted";
  }
  EXPECT_NO_THROW(ContainerReader::parse(bytes, "full"));
}

TEST(Durable, SingleBitFlipAtEveryOffsetIsRejected) {
  const std::string bytes = sample_container_bytes();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[i] = static_cast<char>(static_cast<unsigned char>(corrupt[i]) ^
                                     (1u << bit));
      try {
        ContainerReader::parse(std::move(corrupt), "flip");
        FAIL() << "bit " << bit << " of byte " << i << " flipped unnoticed";
      } catch (const StorageError&) {
        // expected: typed rejection, whatever the offset
      }
    }
  }
}

TEST(Durable, TrailingGarbageIsRejected) {
  std::string bytes = sample_container_bytes();
  bytes += "extra";
  EXPECT_THROW(ContainerReader::parse(std::move(bytes), "garbage"),
               StorageError);
}

TEST_F(DurableDir, AtomicWriteLeavesNoTempFilesAndReplacesWhole) {
  const std::string p = path("artifact.bin");
  durable::atomic_write_file(p, "first version");
  durable::atomic_write_file(p, "second");
  EXPECT_EQ(durable::read_file_bytes(p), "second");
  int entries = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1);  // no lingering "<path>.tmp.<pid>" files
}

/// Restores the real write(2) even if a test assertion throws.
struct WriteHookGuard {
  ~WriteHookGuard() { durable::set_atomic_write_hook({}); }
};

TEST_F(DurableDir, AtomicWriteRetriesTransientWriteFailures) {
  WriteHookGuard guard;
  const std::string p = path("artifact.bin");
  const std::string content = "transient-but-eventually-complete";

  // Three EINTRs up front, then the kernel dribbles one byte per call.
  // Both are transient: progress (or a recoverable errno) resets the
  // retry budget, so the write must still land intact.
  int eintrs = 0;
  int calls = 0;
  durable::set_atomic_write_hook(
      [&](int fd, const void* buf, std::size_t len) -> long {
        ++calls;
        if (eintrs < 3) {
          ++eintrs;
          errno = EINTR;
          return -1;
        }
        return static_cast<long>(
            ::write(fd, buf, len == 0 ? 0 : 1));
      });
  durable::atomic_write_file(p, content);
  durable::set_atomic_write_hook({});

  EXPECT_EQ(durable::read_file_bytes(p), content);
  EXPECT_EQ(calls, 3 + static_cast<int>(content.size()));
  int entries = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1);  // temp file renamed away, nothing lingers
}

TEST_F(DurableDir, AtomicWritePersistentFailureIsBoundedAndTyped) {
  WriteHookGuard guard;
  const std::string p = path("artifact.bin");
  durable::atomic_write_file(p, "previous generation");

  // A device that never makes progress: the retry loop must give up
  // after kMaxWriteRetries attempts, surface a typed StorageError, clean
  // up its temp file, and leave the previous generation untouched.
  int calls = 0;
  durable::set_atomic_write_hook(
      [&](int, const void*, std::size_t) -> long {
        ++calls;
        errno = EINTR;
        return -1;
      });
  try {
    durable::atomic_write_file(p, "next generation");
    FAIL() << "persistent write failure was swallowed";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.path(), p);
    EXPECT_EQ(e.section(), "atomic-write");
  }
  durable::set_atomic_write_hook({});

  EXPECT_EQ(calls, durable::kMaxWriteRetries);
  EXPECT_EQ(durable::read_file_bytes(p), "previous generation");
  int entries = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1);  // failed temp file was removed
}

TEST_F(DurableDir, InjectStorageFaultIsDeterministic) {
  const std::string a = path("a.bin");
  const std::string b = path("b.bin");
  durable::atomic_write_file(a, sample_container_bytes());
  durable::atomic_write_file(b, sample_container_bytes());
  durable::inject_storage_fault(a, StorageFaultKind::BitFlip, 99);
  durable::inject_storage_fault(b, StorageFaultKind::BitFlip, 99);
  EXPECT_EQ(durable::read_file_bytes(a), durable::read_file_bytes(b));
  EXPECT_NE(durable::read_file_bytes(a), sample_container_bytes());

  durable::inject_storage_fault(a, StorageFaultKind::TornWrite, 7);
  durable::inject_storage_fault(b, StorageFaultKind::TornWrite, 7);
  EXPECT_EQ(durable::read_file_bytes(a), durable::read_file_bytes(b));
  EXPECT_LT(fs::file_size(a), sample_container_bytes().size());

  durable::inject_storage_fault(a, StorageFaultKind::LostRename, 1);
  EXPECT_FALSE(fs::exists(a));
}

// ------------------------------------------------------- artifact formats

CheckpointRecord small_checkpoint() {
  CheckpointRecord rec;
  rec.dataset = "TEST";
  rec.next_hour = 3;
  rec.conc = Array3<double>(2, 2, 3, 0.0);
  rec.pm = Array3<double>(3, 2, 3, 0.0);
  for (std::size_t i = 0; i < rec.conc.size(); ++i) {
    rec.conc.flat()[i] = 0.25 * static_cast<double>(i) + 0.001;
  }
  for (std::size_t i = 0; i < rec.pm.size(); ++i) {
    rec.pm.flat()[i] = -0.5 * static_cast<double>(i);
  }
  return rec;
}

TEST_F(DurableDir, CheckpointRoundTripIsBitExact) {
  const CheckpointRecord rec = small_checkpoint();
  const std::string p = path("state.ckpt");
  rec.save(p);
  const CheckpointRecord back = CheckpointRecord::load(p);
  EXPECT_EQ(back.dataset, rec.dataset);
  EXPECT_EQ(back.next_hour, rec.next_hour);
  EXPECT_EQ(back.conc, rec.conc);
  EXPECT_EQ(back.pm, rec.pm);
}

TEST_F(DurableDir, CheckpointCorruptionMatrixRejectsEveryDamage) {
  const CheckpointRecord rec = small_checkpoint();
  const std::string p = path("state.ckpt");
  rec.save(p);
  const std::string bytes = durable::read_file_bytes(p);

  // Truncate at every section boundary and at sampled interior offsets.
  const ContainerReader intact = ContainerReader::parse(bytes, p);
  std::vector<std::size_t> cuts{0, 8, bytes.size() / 2, bytes.size() - 1};
  for (std::size_t i = 0; i < intact.section_count(); ++i) {
    cuts.push_back(static_cast<std::size_t>(intact.section(i).payload_offset));
  }
  for (std::size_t cut : cuts) {
    ASSERT_LT(cut, bytes.size());
    const std::string t = path("cut.ckpt");
    durable::atomic_write_file(t, bytes.substr(0, cut));
    EXPECT_THROW(CheckpointRecord::load(t), StorageError)
        << "truncation at byte " << cut << " accepted";
  }

  // Single-byte flips at a stride (every byte is covered by the
  // container-level exhaustive test above).
  for (std::size_t i = 0; i < bytes.size(); i += 13) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(static_cast<unsigned char>(corrupt[i]) ^ 0x40);
    const std::string t = path("flip.ckpt");
    durable::atomic_write_file(t, corrupt);
    EXPECT_THROW(CheckpointRecord::load(t), Error)
        << "flip at byte " << i << " accepted";
  }
}

TEST_F(DurableDir, WorkTraceRoundTripIsBitExact) {
  WorkTrace t;
  t.dataset = "TEST";
  t.species = 2;
  t.layers = 3;
  t.points = 4;
  t.transport_row_parallelism = 2;
  t.hours.resize(2);
  for (std::size_t h = 0; h < t.hours.size(); ++h) {
    HourTrace& hour = t.hours[h];
    hour.input_work = 10.0 + static_cast<double>(h);
    hour.pretrans_work = 0.5;
    hour.output_work = 1.25;
    hour.steps.resize(2);
    for (StepTrace& s : hour.steps) {
      s.aerosol_work = 3.5;
      s.transport1_layer_work = {1.0, 2.0, 3.0};
      s.transport2_layer_work = {1.5, 2.5, 3.5};
      s.chem_column_work = {4.0, 5.0, 6.0, 7.0};
    }
  }
  const auto tmp = fs::temp_directory_path() / "airshed_trace_rt.trace";
  t.save(tmp.string());
  EXPECT_EQ(WorkTrace::load(tmp.string()), t);
  fs::remove(tmp);
}

TEST_F(DurableDir, LegacyTextTraceStillLoads) {
  // Hand-written v2 text trace (the format of the committed traces/ files).
  const std::string p = path("legacy.trace");
  {
    std::ofstream os(p);
    os << "airshed-worktrace-v2\nTEST\n";
    os << "2 1 2 1 1\n";        // species layers points row_par nhours
    os << "10 1 2 1\n";         // input pretrans output nsteps
    os << "3.5\n1.0\n2.0\n4.0 5.0\n";  // aerosol t1[1] t2[1] chem[2]
  }
  const WorkTrace t = WorkTrace::load(p);
  EXPECT_EQ(t.dataset, "TEST");
  EXPECT_EQ(t.species, 2u);
  ASSERT_EQ(t.hours.size(), 1u);
  ASSERT_EQ(t.hours[0].steps.size(), 1u);
  EXPECT_DOUBLE_EQ(t.hours[0].steps[0].chem_column_work[1], 5.0);
}

// ---------------------------------------------------------------- vault

TEST_F(DurableDir, VaultRestoresNewestValidAndQuarantinesCorrupt) {
  CheckpointVault vault(path("vault"));
  EXPECT_TRUE(vault.empty());
  CheckpointRecord rec = small_checkpoint();
  for (int hour = 1; hour <= 3; ++hour) {
    rec.next_hour = hour;
    EXPECT_EQ(vault.append(rec), hour);  // generations number from 1
  }

  // Intact chain: newest wins.
  {
    CheckpointVault::RestoreResult r = vault.restore_newest_valid();
    EXPECT_EQ(r.generation, 3);
    EXPECT_EQ(r.record.next_hour, 3);
    EXPECT_EQ(r.scanned, 1);
    EXPECT_TRUE(r.quarantined.empty());
  }

  // Corrupt the newest generation: restore falls back and quarantines.
  durable::inject_storage_fault(vault.generation_path(3),
                                StorageFaultKind::BitFlip, 17);
  {
    CheckpointVault::RestoreResult r = vault.restore_newest_valid();
    EXPECT_EQ(r.generation, 2);
    EXPECT_EQ(r.record.next_hour, 2);
    EXPECT_EQ(r.scanned, 2);
    ASSERT_EQ(r.quarantined.size(), 1u);
    EXPECT_TRUE(fs::exists(r.quarantined[0]));
    EXPECT_FALSE(fs::exists(vault.generation_path(3)));
    ASSERT_EQ(r.errors.size(), 1u);
    EXPECT_NE(r.errors[0].find(vault.generation_path(3)), std::string::npos);
  }

  // A lost rename (file missing) behaves like any other corruption.
  durable::inject_storage_fault(vault.generation_path(2),
                                StorageFaultKind::LostRename, 0);
  EXPECT_EQ(vault.restore_newest_valid().generation, 1);
}

TEST_F(DurableDir, VaultSurvivesManifestLossAndDamage) {
  CheckpointVault vault(path("vault"));
  CheckpointRecord rec = small_checkpoint();
  vault.append(rec);
  vault.append(rec);

  // Manifest deleted: the directory scan recovers the chain.
  fs::remove(path("vault") + "/ckpt.manifest");
  EXPECT_EQ(vault.generations(), (std::vector<int>{1, 2}));
  EXPECT_EQ(vault.restore_newest_valid().generation, 2);

  // Manifest corrupted: same degradation.
  vault.append(rec);  // rewrites the manifest
  durable::inject_storage_fault(path("vault") + "/ckpt.manifest",
                                StorageFaultKind::TornWrite, 5);
  EXPECT_EQ(vault.generations(), (std::vector<int>{1, 2, 3}));
}

TEST_F(DurableDir, VaultThrowsTypedErrorWhenNothingValidates) {
  CheckpointVault vault(path("vault"));
  CheckpointRecord rec = small_checkpoint();
  vault.append(rec);
  durable::inject_storage_fault(vault.generation_path(1),
                                StorageFaultKind::TornWrite, 3);
  EXPECT_THROW(vault.restore_newest_valid(), StorageError);
  // Empty vault: also a typed error.
  CheckpointVault empty(path("empty_vault"));
  EXPECT_THROW(empty.restore_newest_valid(), StorageError);
}

// ------------------------------------------------- vault-based model resume

std::uint64_t field_digest(const RunOutputs& out) {
  std::uint64_t h = fnv1a_bytes(std::string_view(
      reinterpret_cast<const char*>(out.conc.flat().data()),
      out.conc.size() * sizeof(double)));
  return fnv1a_bytes(
      std::string_view(reinterpret_cast<const char*>(out.pm.flat().data()),
                       out.pm.size() * sizeof(double)),
      h);
}

TEST_F(DurableDir, ModelResumesBitIdenticallyFromNewestValidGeneration) {
  Dataset ds = test_basin_dataset();
  ModelOptions opts;
  opts.hours = 4;
  AirshedModel model(ds, opts);

  CheckpointVault vault(path("vault"));
  const ModelRunResult full = model.run_with_checkpoints(
      [&](const CheckpointRecord& rec) { vault.append(rec); });
  ASSERT_EQ(vault.generations().size(), 4u);

  // Corrupt the two newest generations; resume must restore generation 2
  // (hour boundary 2) and still reproduce the uninterrupted run bit for bit.
  durable::inject_storage_fault(vault.generation_path(4),
                                StorageFaultKind::BitFlip, 11);
  durable::inject_storage_fault(vault.generation_path(3),
                                StorageFaultKind::TornWrite, 12);

  CheckpointVault::RestoreResult info;
  const ModelRunResult resumed = model.resume(vault, &info);
  EXPECT_EQ(info.generation, 2);
  EXPECT_EQ(info.scanned, 3);
  EXPECT_EQ(info.quarantined.size(), 2u);
  ASSERT_EQ(resumed.outputs.hourly.size(), 2u);  // hours 2 and 3 replayed
  EXPECT_EQ(field_digest(resumed.outputs), field_digest(full.outputs));
  for (std::size_t i = 0; i < resumed.outputs.hourly.size(); ++i) {
    EXPECT_EQ(resumed.outputs.hourly[i].max_surface_o3_ppm,
              full.outputs.hourly[i + 2].max_surface_o3_ppm);
  }
}

TEST(UniformModelCheckpoint, ResumeMatchesUninterruptedRun) {
  UniformDataset ds = build_uniform_dataset(test_basin_spec(), 6, 6);
  ModelOptions opts;
  opts.hours = 3;
  UniformAirshedModel model(ds, opts);

  std::vector<CheckpointRecord> ckpts;
  const ModelRunResult full = model.run_with_checkpoints(
      [&](const CheckpointRecord& rec) { ckpts.push_back(rec); });
  ASSERT_EQ(ckpts.size(), 3u);

  const ModelRunResult resumed = model.resume(ckpts[0]);
  ASSERT_EQ(resumed.outputs.hourly.size(), 2u);
  EXPECT_EQ(resumed.outputs.conc, full.outputs.conc);  // bitwise
  EXPECT_EQ(resumed.outputs.pm, full.outputs.pm);
  EXPECT_THROW(
      {
        CheckpointRecord bad = ckpts[0];
        bad.dataset = "other";
        model.resume(bad);
      },
      ConfigError);
}

// -------------------------------------------------- FaultPlan storage class

TEST(StorageFaults, DrawsAreStatelessAndSeedDeterministic) {
  FaultModelOptions f;
  f.storage_fault_probability = 0.5;
  f.payload_corruption_probability = 0.3;
  const FaultPlan a = FaultPlan::make(5, 8, 12, f);
  const FaultPlan b = FaultPlan::make(5, 8, 12, f);
  bool hit = false, none = false;
  for (int hour = 0; hour < 12; ++hour) {
    for (long long artifact = 0; artifact < 16; ++artifact) {
      const StorageFaultKind kind = a.storage_fault(hour, artifact);
      EXPECT_EQ(kind, b.storage_fault(hour, artifact));
      EXPECT_EQ(kind, a.storage_fault(hour, artifact));  // stateless
      EXPECT_EQ(a.storage_fault_seed(hour, artifact),
                b.storage_fault_seed(hour, artifact));
      (kind == StorageFaultKind::None ? none : hit) = true;
    }
    EXPECT_EQ(a.payload_corruptions(hour, 0), b.payload_corruptions(hour, 0));
    EXPECT_LE(a.payload_corruptions(hour, 0), f.max_drops_per_phase);
  }
  EXPECT_TRUE(hit);
  EXPECT_TRUE(none);
  // Distinct artifacts at the same hour get independent draws (the reason
  // the executor's artifact counter is monotonic, never reused).
  bool differs = false;
  for (long long artifact = 1; artifact < 64 && !differs; ++artifact) {
    differs = a.storage_fault(0, artifact) != a.storage_fault(0, 0);
  }
  EXPECT_TRUE(differs);
}

TEST(StorageFaults, PlanEmptinessCoversNewClasses) {
  FaultModelOptions f;
  f.storage_fault_probability = 0.2;
  EXPECT_FALSE(FaultPlan::make(1, 4, 4, f).empty());
  f.storage_fault_probability = 0.0;
  f.payload_corruption_probability = 0.2;
  EXPECT_FALSE(FaultPlan::make(1, 4, 4, f).empty());
  EXPECT_TRUE(FaultPlan::make(1, 4, 4, FaultModelOptions{}).empty());
  EXPECT_FALSE(FaultPlan{}.has_storage_faults());
  EXPECT_EQ(FaultPlan{}.storage_fault(0, 0), StorageFaultKind::None);
  EXPECT_EQ(FaultPlan{}.payload_corruptions(0, 0), 0);
}

// ------------------------------------------------- executor storage faults

const WorkTrace& shared_trace() {
  static const WorkTrace trace = [] {
    Dataset ds = test_basin_dataset();
    ModelOptions opts;
    opts.hours = 6;
    return AirshedModel(ds, opts).run().trace;
  }();
  return trace;
}

ExecutionConfig faulty_config(std::uint64_t seed, double storage_p,
                              double payload_p) {
  ExecutionConfig cfg;
  cfg.machine = machine_by_name("paragon");
  cfg.nodes = 16;
  FaultModelOptions f;
  f.node_mtbf_hours = 30.0;
  f.storage_fault_probability = storage_p;
  f.payload_corruption_probability = payload_p;
  cfg.faults = FaultPlan::make(seed, cfg.nodes, 6, f);
  return cfg;
}

TEST(ExecutorStorageFaults, LedgerStillDecomposesTotalExactly) {
  const WorkTrace& t = shared_trace();
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const ExecutionConfig cfg = faulty_config(seed, 0.6, 0.1);
    if (!cfg.faults.has_failures()) continue;
    const RunReport r = simulate_execution(t, cfg);
    EXPECT_NEAR(r.ledger.total_seconds(), r.total_seconds,
                1e-9 * r.total_seconds);
    EXPECT_NEAR(r.ledger.category_seconds(PhaseCategory::Recovery),
                r.recovery.total_overhead_s(),
                1e-9 * (1.0 + r.recovery.total_overhead_s()));
  }
}

TEST(ExecutorStorageFaults, CorruptionTriggersFallbackAccounting) {
  const WorkTrace& t = shared_trace();
  bool saw_fallback = false;
  for (std::uint64_t seed = 1; seed <= 60 && !saw_fallback; ++seed) {
    const ExecutionConfig cfg = faulty_config(seed, 0.7, 0.0);
    if (!cfg.faults.has_failures()) continue;
    const RunReport r = simulate_execution(t, cfg);
    if (r.recovery.corrupt_checkpoints > 0 && r.recovery.fallback_hours > 0) {
      saw_fallback = true;
      EXPECT_GT(r.recovery.fallback_s, 0.0);
      EXPECT_GT(r.recovery.verify_s, 0.0);
    }
  }
  EXPECT_TRUE(saw_fallback) << "no seed in 60 produced a checkpoint fallback";
}

TEST(ExecutorStorageFaults, ZeroProbabilityIsByteIdenticalToBaseline) {
  const WorkTrace& t = shared_trace();
  const std::uint64_t seed = [&] {
    for (std::uint64_t s = 1; s < 100; ++s) {
      if (faulty_config(s, 0.0, 0.0).faults.has_failures()) return s;
    }
    return std::uint64_t{1};
  }();
  const RunReport base = simulate_execution(t, faulty_config(seed, 0.0, 0.0));
  // Storage faults at probability zero change nothing, bit for bit.
  EXPECT_EQ(base.total_seconds,
            simulate_execution(t, faulty_config(seed, 0.0, 0.0)).total_seconds);
  EXPECT_EQ(base.recovery.corrupt_checkpoints, 0);
  EXPECT_DOUBLE_EQ(base.recovery.fallback_hours, 0.0);
  EXPECT_DOUBLE_EQ(base.recovery.verify_s, 0.0);
  EXPECT_DOUBLE_EQ(base.recovery.fallback_s, 0.0);
}

TEST(ExecutorStorageFaults, PayloadCorruptionChargesVerifyAndRetransmit) {
  const WorkTrace& t = shared_trace();
  ExecutionConfig clean;
  clean.machine = machine_by_name("paragon");
  clean.nodes = 16;
  const RunReport base = simulate_execution(t, clean);

  ExecutionConfig cfg = clean;
  FaultModelOptions f;
  f.payload_corruption_probability = 0.2;
  cfg.faults = FaultPlan::make(3, cfg.nodes, 6, f);
  const RunReport r = simulate_execution(t, cfg);
  EXPECT_GT(r.recovery.verify_s, 0.0);
  EXPECT_GT(r.recovery.retransmissions, 0);
  EXPECT_GT(r.total_seconds, base.total_seconds);
  EXPECT_NEAR(r.ledger.category_seconds(PhaseCategory::Recovery),
              r.recovery.total_overhead_s(),
              1e-9 * r.recovery.total_overhead_s());
  // Determinism of the whole report.
  EXPECT_EQ(r.total_seconds, simulate_execution(t, cfg).total_seconds);
}

// --------------------------------------------------------------- journal

TEST_F(DurableDir, JournalAppendAndReplayRoundTrip) {
  const std::string p = path("wal.journal");
  {
    durable::JournalWriter w(p, "airshed-test-journal", 3);
    w.append("alpha");
    w.append(std::string("\x00\x01\x02", 3));  // binary-safe payloads
    w.append("");                              // empty record is legal
    EXPECT_EQ(w.appended(), 3u);
  }
  const durable::JournalReplay r =
      durable::replay_journal(p, "airshed-test-journal");
  EXPECT_TRUE(r.existed);
  EXPECT_FALSE(r.torn_tail);
  EXPECT_EQ(r.format, "airshed-test-journal");
  EXPECT_EQ(r.version, 3u);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0], "alpha");
  EXPECT_EQ(r.records[1], std::string("\x00\x01\x02", 3));
  EXPECT_EQ(r.records[2], "");
  EXPECT_EQ(r.valid_bytes, fs::file_size(p));
}

TEST_F(DurableDir, JournalMissingFileAndWrongFormat) {
  EXPECT_FALSE(durable::replay_journal(path("absent.journal")).existed);
  durable::JournalWriter w(path("wal.journal"), "airshed-test-journal", 1);
  w.append("x");
  EXPECT_THROW(durable::replay_journal(path("wal.journal"), "other-format"),
               StorageError);
}

TEST_F(DurableDir, JournalTornTailIsTruncatedAtEveryCutPoint) {
  const std::string p = path("wal.journal");
  {
    durable::JournalWriter w(p, "airshed-test-journal", 1);
    w.append("first record");
    w.append("second record");
  }
  const durable::JournalReplay full = durable::replay_journal(p);
  const std::string bytes = durable::read_file_bytes(p);
  ASSERT_EQ(full.valid_bytes, bytes.size());

  // Every truncation point inside the SECOND record's frame must replay to
  // exactly the first record plus a reported torn tail; a resuming writer
  // must then restore a fully valid two-record journal.
  const std::uint64_t first_end =
      full.valid_bytes - (4 + std::string("second record").size() + 4);
  for (std::uint64_t cut = first_end + 1; cut < bytes.size(); ++cut) {
    durable::atomic_write_file(p, std::string_view(bytes).substr(0, cut));
    const durable::JournalReplay torn = durable::replay_journal(p);
    EXPECT_TRUE(torn.existed);
    EXPECT_TRUE(torn.torn_tail) << "cut at " << cut;
    ASSERT_EQ(torn.records.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(torn.records[0], "first record");
    EXPECT_EQ(torn.valid_bytes, first_end);

    durable::JournalWriter resume(p, torn);
    resume.append("second record");
    const durable::JournalReplay healed = durable::replay_journal(p);
    ASSERT_EQ(healed.records.size(), 2u);
    EXPECT_EQ(healed.records[1], "second record");
    EXPECT_FALSE(healed.torn_tail);
  }
}

TEST_F(DurableDir, JournalBitFlipInCommittedRecordEndsValidPrefix) {
  const std::string p = path("wal.journal");
  {
    durable::JournalWriter w(p, "airshed-test-journal", 1);
    w.append("first record");
    w.append("second record");
  }
  std::string bytes = durable::read_file_bytes(p);
  // Flip one payload bit of the second record (its CRC must catch it, and
  // the valid prefix must stop at the first record).
  bytes[bytes.size() - 4 - 3] ^= 0x10;
  durable::atomic_write_file(p, bytes);
  const durable::JournalReplay r = durable::replay_journal(p);
  EXPECT_TRUE(r.existed);
  EXPECT_TRUE(r.torn_tail);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0], "first record");
}

TEST_F(DurableDir, JournalIncompleteHeaderReadsAsNonexistent) {
  const std::string p = path("wal.journal");
  { durable::JournalWriter w(p, "airshed-test-journal", 1); }
  const std::string bytes = durable::read_file_bytes(p);
  for (std::uint64_t cut = 0; cut < bytes.size(); ++cut) {
    durable::atomic_write_file(p, std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(durable::replay_journal(p).existed) << "cut at " << cut;
  }
}

}  // namespace
}  // namespace airshed
