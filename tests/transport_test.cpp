// Tests for the SUPG 2-D transport operator and the 1-D operator-split
// baseline: conservation, constant preservation, advection of a blob,
// stability, and work accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "airshed/chem/species.hpp"
#include "airshed/grid/multiscale.hpp"
#include "airshed/grid/uniform.hpp"
#include "airshed/transport/onedim.hpp"
#include "airshed/transport/supg.hpp"
#include "airshed/util/error.hpp"

namespace airshed {
namespace {

TriMesh make_mesh(int target_vertices = 200) {
  MultiscaleGrid g(BBox{0, 0, 100, 100}, 4, 4, 3);
  g.refine_to_target(
      [](Point2 p) {
        return std::exp(-norm(p - Point2{50, 50}) / 20.0) + 0.05;
      },
      target_vertices);
  return g.triangulate();
}

/// One-species field helpers (dim0 = 1 keeps the tests fast and readable).
ConcentrationField uniform_field(const TriMesh& mesh, double value) {
  return ConcentrationField(1, 1, mesh.vertex_count(), value);
}

ConcentrationField blob_field(const TriMesh& mesh, Point2 center,
                              double sigma) {
  ConcentrationField f(1, 1, mesh.vertex_count(), 0.0);
  const auto pts = mesh.points();
  for (std::size_t v = 0; v < pts.size(); ++v) {
    const Point2 d = pts[v] - center;
    f(0, 0, v) = std::exp(-dot(d, d) / (2.0 * sigma * sigma));
  }
  return f;
}

Point2 center_of_mass(const TriMesh& mesh, const ConcentrationField& f) {
  const auto pts = mesh.points();
  const auto lumped = mesh.lumped_area();
  double m = 0.0;
  Point2 c{0, 0};
  for (std::size_t v = 0; v < pts.size(); ++v) {
    const double w = f(0, 0, v) * lumped[v];
    m += w;
    c.x += w * pts[v].x;
    c.y += w * pts[v].y;
  }
  return {c.x / m, c.y / m};
}

TEST(SupgTransport, PreservesConstantField) {
  const TriMesh mesh = make_mesh();
  SupgTransport op(mesh);
  ConcentrationField f = uniform_field(mesh, 3.5);
  std::vector<Point2> vel(mesh.vertex_count(), Point2{10.0, -6.0});
  const std::vector<double> bg = {3.5};
  op.advance_layer(f, 0, vel, 0.5, 0.25, bg);
  for (std::size_t v = 0; v < mesh.vertex_count(); ++v) {
    EXPECT_NEAR(f(0, 0, v), 3.5, 1e-9) << "vertex " << v;
  }
}

TEST(SupgTransport, ConservesInteriorMassWithZeroWind) {
  // With zero velocity and pure diffusion, the scheme conserves total mass
  // exactly (diffusion is in divergence form; boundary relaxation is off
  // when |u| = 0).
  const TriMesh mesh = make_mesh();
  SupgTransport op(mesh);
  ConcentrationField f = blob_field(mesh, {50, 50}, 10.0);
  const double m0 = op.layer_mass(f, 0, 0);
  std::vector<Point2> vel(mesh.vertex_count(), Point2{0.0, 0.0});
  const std::vector<double> bg = {0.0};
  for (int i = 0; i < 10; ++i) op.advance_layer(f, 0, vel, 1.0, 0.1, bg);
  EXPECT_NEAR(op.layer_mass(f, 0, 0), m0, 1e-9 * m0);
}

TEST(SupgTransport, DiffusionSpreadsAndFlattens) {
  const TriMesh mesh = make_mesh();
  SupgTransport op(mesh);
  ConcentrationField f = blob_field(mesh, {50, 50}, 8.0);
  double peak0 = 0.0;
  for (std::size_t v = 0; v < mesh.vertex_count(); ++v) {
    peak0 = std::max(peak0, f(0, 0, v));
  }
  std::vector<Point2> vel(mesh.vertex_count(), Point2{0.0, 0.0});
  const std::vector<double> bg = {0.0};
  for (int i = 0; i < 8; ++i) op.advance_layer(f, 0, vel, 2.0, 0.25, bg);
  double peak1 = 0.0;
  for (std::size_t v = 0; v < mesh.vertex_count(); ++v) {
    peak1 = std::max(peak1, f(0, 0, v));
    EXPECT_GE(f(0, 0, v), 0.0);
  }
  EXPECT_LT(peak1, peak0);
}

TEST(SupgTransport, AdvectsBlobDownwind) {
  const TriMesh mesh = make_mesh(400);
  SupgTransport op(mesh);
  ConcentrationField f = blob_field(mesh, {35, 50}, 8.0);
  const Point2 com0 = center_of_mass(mesh, f);
  std::vector<Point2> vel(mesh.vertex_count(), Point2{20.0, 0.0});  // km/h
  const std::vector<double> bg = {0.0};
  // 1 hour of 20 km/h eastward wind, small diffusion.
  for (int i = 0; i < 10; ++i) op.advance_layer(f, 0, vel, 0.2, 0.1, bg);
  const Point2 com1 = center_of_mass(mesh, f);
  EXPECT_NEAR(com1.x - com0.x, 20.0, 5.0);  // moved ~20 km east
  EXPECT_NEAR(com1.y - com0.y, 0.0, 3.0);   // no north drift
}

TEST(SupgTransport, RemainsStableUnderStrongWind) {
  const TriMesh mesh = make_mesh();
  SupgTransport op(mesh);
  ConcentrationField f = blob_field(mesh, {50, 50}, 10.0);
  std::vector<Point2> vel(mesh.vertex_count());
  const auto pts = mesh.points();
  for (std::size_t v = 0; v < pts.size(); ++v) {
    // Rotating wind field, up to ~45 km/h.
    vel[v] = {-(pts[v].y - 50.0), pts[v].x - 50.0};
  }
  const std::vector<double> bg = {0.0};
  for (int i = 0; i < 24; ++i) op.advance_layer(f, 0, vel, 0.5, 0.25, bg);
  for (std::size_t v = 0; v < mesh.vertex_count(); ++v) {
    EXPECT_TRUE(std::isfinite(f(0, 0, v)));
    EXPECT_GE(f(0, 0, v), 0.0);
    EXPECT_LT(f(0, 0, v), 2.0);  // no blow-up or spurious extrema
  }
}

TEST(SupgTransport, InflowBoundaryRelaxesTowardBackground) {
  const TriMesh mesh = make_mesh();
  SupgTransport op(mesh);
  ConcentrationField f = uniform_field(mesh, 0.0);
  std::vector<Point2> vel(mesh.vertex_count(), Point2{25.0, 0.0});
  const std::vector<double> bg = {1.0};
  for (int i = 0; i < 30; ++i) op.advance_layer(f, 0, vel, 0.2, 0.2, bg);
  // After 6 hours of 25 km/h inflow across a 100 km domain, the field must
  // approach the background everywhere.
  double min_c = 1e9;
  for (std::size_t v = 0; v < mesh.vertex_count(); ++v) {
    min_c = std::min(min_c, f(0, 0, v));
  }
  EXPECT_GT(min_c, 0.5);
}

TEST(SupgTransport, StableDtShrinksWithWind) {
  const TriMesh mesh = make_mesh();
  SupgTransport op(mesh);
  std::vector<Point2> calm(mesh.vertex_count(), Point2{2.0, 0.0});
  std::vector<Point2> windy(mesh.vertex_count(), Point2{40.0, 0.0});
  EXPECT_GT(op.stable_dt_hours(calm, 0.5), op.stable_dt_hours(windy, 0.5));
}

TEST(SupgTransport, WorkAccountingScalesWithSubsteps) {
  const TriMesh mesh = make_mesh();
  SupgTransport op(mesh);
  ConcentrationField f = uniform_field(mesh, 1.0);
  std::vector<Point2> vel(mesh.vertex_count(), Point2{30.0, 10.0});
  const std::vector<double> bg = {1.0};
  const auto r1 = op.advance_layer(f, 0, vel, 0.5, 0.05, bg);
  const auto r2 = op.advance_layer(f, 0, vel, 0.5, 0.2, bg);
  EXPECT_GT(r2.substeps, r1.substeps);
  EXPECT_NEAR(r2.work_flops / r1.work_flops,
              static_cast<double>(r2.substeps) / r1.substeps, 1e-9);
}

TEST(SupgTransport, RejectsMismatchedInputs) {
  const TriMesh mesh = make_mesh();
  SupgTransport op(mesh);
  ConcentrationField f = uniform_field(mesh, 1.0);
  std::vector<Point2> bad_vel(3);
  const std::vector<double> bg = {1.0};
  EXPECT_THROW(op.advance_layer(f, 0, bad_vel, 0.5, 0.1, bg), Error);
  std::vector<Point2> vel(mesh.vertex_count());
  EXPECT_THROW(op.advance_layer(f, 5, vel, 0.5, 0.1, bg), Error);  // layer
  const std::vector<double> bad_bg = {1.0, 2.0};
  EXPECT_THROW(op.advance_layer(f, 0, vel, 0.5, 0.1, bad_bg), Error);
}

// ----------------------------------------------------------- 1-D baseline

TEST(OneDimTransport, PreservesConstantField) {
  UniformGrid grid(BBox{0, 0, 100, 100}, 20, 20);
  OneDimTransport op(grid);
  ConcentrationField f(1, 1, grid.cell_count(), 2.0);
  std::vector<Point2> vel(grid.cell_count(), Point2{15.0, 10.0});
  const std::vector<double> bg = {2.0};
  op.advance_layer(f, 0, vel, 0.5, 0.3, bg);
  for (std::size_t i = 0; i < grid.cell_count(); ++i) {
    EXPECT_NEAR(f(0, 0, i), 2.0, 1e-9);
  }
}

TEST(OneDimTransport, ConservesMassWithZeroBoundaryFlow) {
  UniformGrid grid(BBox{0, 0, 100, 100}, 24, 24);
  OneDimTransport op(grid);
  ConcentrationField f(1, 1, grid.cell_count(), 0.0);
  for (std::size_t j = 8; j < 16; ++j) {
    for (std::size_t i = 8; i < 16; ++i) f(0, 0, grid.index(i, j)) = 1.0;
  }
  const double m0 = op.layer_mass(f, 0, 0);
  std::vector<Point2> vel(grid.cell_count(), Point2{0.0, 0.0});
  const std::vector<double> bg = {0.0};
  for (int i = 0; i < 10; ++i) op.advance_layer(f, 0, vel, 1.0, 0.2, bg);
  EXPECT_NEAR(op.layer_mass(f, 0, 0), m0, 1e-9 * m0);
}

TEST(OneDimTransport, AdvectsSquareWaveWithoutOvershoot) {
  UniformGrid grid(BBox{0, 0, 100, 100}, 40, 40);
  OneDimTransport op(grid);
  ConcentrationField f(1, 1, grid.cell_count(), 0.0);
  for (std::size_t j = 15; j < 25; ++j) {
    for (std::size_t i = 5; i < 15; ++i) f(0, 0, grid.index(i, j)) = 1.0;
  }
  std::vector<Point2> vel(grid.cell_count(), Point2{25.0, 0.0});
  const std::vector<double> bg = {0.0};
  for (int i = 0; i < 8; ++i) op.advance_layer(f, 0, vel, 0.0, 0.125, bg);
  // After 1 h at 25 km/h the block center moves from x=25 to x=50.
  double cx = 0.0, m = 0.0;
  for (std::size_t j = 0; j < 40; ++j) {
    for (std::size_t i = 0; i < 40; ++i) {
      const double c = f(0, 0, grid.index(i, j));
      EXPECT_GE(c, -1e-12);
      EXPECT_LE(c, 1.0 + 1e-9) << "flux limiter must prevent overshoot";
      m += c;
      cx += c * grid.center(i, j).x;
    }
  }
  EXPECT_NEAR(cx / m, 50.0, 2.0);
}

TEST(OneDimTransport, SweepParallelismExceedsLayers) {
  UniformGrid grid(BBox{0, 0, 100, 100}, 30, 20);
  OneDimTransport op(grid);
  EXPECT_EQ(op.sweep_parallelism(5), 5u * 20u);
}

TEST(OneDimTransport, NegativeVelocityAdvectsLeft) {
  UniformGrid grid(BBox{0, 0, 100, 100}, 40, 4);
  OneDimTransport op(grid);
  ConcentrationField f(1, 1, grid.cell_count(), 0.0);
  for (std::size_t j = 0; j < 4; ++j) {
    for (std::size_t i = 25; i < 30; ++i) f(0, 0, grid.index(i, j)) = 1.0;
  }
  std::vector<Point2> vel(grid.cell_count(), Point2{-20.0, 0.0});
  const std::vector<double> bg = {0.0};
  double cx0 = 0.0, m0 = 0.0;
  for (std::size_t i = 0; i < grid.cell_count(); ++i) {
    m0 += f.flat()[i];
  }
  for (int s = 0; s < 4; ++s) op.advance_layer(f, 0, vel, 0.0, 0.25, bg);
  double cx1 = 0.0, m1 = 0.0;
  for (std::size_t j = 0; j < 4; ++j) {
    for (std::size_t i = 0; i < 40; ++i) {
      const double c = f(0, 0, grid.index(i, j));
      m1 += c;
      cx1 += c * grid.center(i, j).x;
    }
  }
  (void)cx0;
  EXPECT_LT(cx1 / m1, 68.75);  // moved left from initial center (~68.75)
}

}  // namespace
}  // namespace airshed
