// Tests for the io module: dataset construction, hourly input generation,
// and output statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "airshed/aerosol/aerosol.hpp"
#include "airshed/io/dataset.hpp"
#include "airshed/io/hourly.hpp"
#include "airshed/util/error.hpp"

namespace airshed {
namespace {

TEST(DatasetBuilder, LaHitsPaperScaleCounts) {
  const Dataset la = la_basin_dataset();
  EXPECT_EQ(la.name(), "LA");
  EXPECT_EQ(la.layers(), 5);
  // Greedy refinement lands within a few vertices of the paper's 700.
  EXPECT_GE(la.points(), 700u);
  EXPECT_LE(la.points(), 715u);
  EXPECT_EQ(la.layer_dz_m().size(), 5u);
}

TEST(DatasetBuilder, NeHitsPaperScaleCounts) {
  const Dataset ne = northeast_dataset();
  EXPECT_GE(ne.points(), 3328u);
  EXPECT_LE(ne.points(), 3345u);
  EXPECT_EQ(ne.layers(), 5);
}

TEST(DatasetBuilder, ConstructionIsDeterministic) {
  const Dataset a = la_basin_dataset();
  const Dataset b = la_basin_dataset();
  ASSERT_EQ(a.points(), b.points());
  const auto pa = a.mesh().points();
  const auto pb = b.mesh().points();
  for (std::size_t v = 0; v < pa.size(); ++v) {
    EXPECT_EQ(pa[v].x, pb[v].x);
    EXPECT_EQ(pa[v].y, pb[v].y);
  }
}

TEST(DatasetBuilder, VertexOrderIsShuffledNotSpatiallySorted) {
  // Consecutive vertex indices should be spatially scattered (the CIT
  // file-order property the chemistry BLOCK distribution relies on):
  // the mean distance between consecutive vertices should be a large
  // fraction of the domain size.
  const Dataset la = la_basin_dataset();
  const auto pts = la.mesh().points();
  double mean_step = 0.0;
  for (std::size_t v = 1; v < pts.size(); ++v) {
    mean_step += norm(pts[v] - pts[v - 1]);
  }
  mean_step /= static_cast<double>(pts.size() - 1);
  EXPECT_GT(mean_step, 30.0) << "vertex numbering looks spatially sorted";
}

TEST(DatasetBuilder, ControlsArePropagated) {
  ControlScenario cut;
  cut.nox_scale = 0.25;
  const Dataset ds = test_basin_dataset(cut);
  EXPECT_DOUBLE_EQ(ds.emissions.controls().nox_scale, 0.25);
}

TEST(InputGenerator, FieldsHaveConsistentShapes) {
  const Dataset ds = test_basin_dataset();
  InputGenerator gen(ds);
  const HourlyInputs in = gen.generate(8);
  ASSERT_EQ(in.wind_kmh.size(), static_cast<std::size_t>(ds.layers()));
  for (const auto& layer : in.wind_kmh) {
    EXPECT_EQ(layer.size(), ds.points());
  }
  EXPECT_EQ(in.kz_m2s.size(), static_cast<std::size_t>(ds.layers() - 1));
  EXPECT_EQ(in.layer_temp_k.size(), static_cast<std::size_t>(ds.layers()));
  EXPECT_EQ(in.vertex_temp_k.size(), ds.points());
  EXPECT_EQ(in.surface_flux.rows(), static_cast<std::size_t>(kSpeciesCount));
  EXPECT_EQ(in.surface_flux.cols(), ds.points());
  EXPECT_GT(in.kh_km2h, 0.0);
  EXPECT_GT(in.input_work_flops, 0.0);
  EXPECT_GT(in.pretrans_work_flops, 0.0);
  EXPECT_GT(gen.outputhour_work_flops(), 0.0);
}

TEST(InputGenerator, FluxesAreNonNegativeAndEmittedOnly) {
  const Dataset ds = test_basin_dataset();
  InputGenerator gen(ds);
  const HourlyInputs in = gen.generate(12);
  for (int s = 0; s < kSpeciesCount; ++s) {
    const bool emitted = is_emitted_species(static_cast<Species>(s));
    for (std::size_t v = 0; v < ds.points(); ++v) {
      EXPECT_GE(in.surface_flux(s, v), 0.0);
      if (!emitted && static_cast<Species>(s) != Species::ISOP) {
        EXPECT_EQ(in.surface_flux(s, v), 0.0) << species_name(s);
      }
    }
  }
}

TEST(InputGenerator, ElevatedSourcesMapToNearestVertex) {
  const Dataset ds = test_basin_dataset();  // one SO2 stack at (30, 30)
  InputGenerator gen(ds);
  const HourlyInputs in = gen.generate(8);
  ASSERT_EQ(in.elevated_flux.size(), 1u);
  const auto& [vertex, flux] = *in.elevated_flux.begin();
  // The chosen vertex is near the stack.
  const Point2 p = ds.mesh().points()[vertex];
  EXPECT_LT(norm(p - Point2{30.0, 30.0}), 15.0);
  // The flux lands on SO2 at layer 1.
  const std::size_t idx =
      static_cast<std::size_t>(index_of(Species::SO2)) * ds.layers() + 1;
  EXPECT_GT(flux[idx], 0.0);
  double total = 0.0;
  for (double f : flux) total += f;
  EXPECT_DOUBLE_EQ(total, flux[idx]) << "only the stack entry is nonzero";
}

TEST(InputGenerator, NightWindsGiveFewerStepsThanWindyHours) {
  const Dataset ds = test_basin_dataset();
  InputGenerator gen(ds);
  int lo = 1000, hi = 0;
  for (int h = 0; h < 24; ++h) {
    const int n = gen.generate(h).nsteps;
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  EXPECT_GE(lo, InputGenerator::kMinStepsPerHour);
  EXPECT_LE(hi, InputGenerator::kMaxStepsPerHour);
}

TEST(HourlyStatsFn, FindsMaximumAndMeans) {
  const Dataset ds = test_basin_dataset();
  ConcentrationField conc(kSpeciesCount, ds.layers(), ds.points(), 0.01);
  Array3<double> pm(kPmComponents, ds.layers(), ds.points(), 0.0);
  const std::size_t hot = 7;
  conc(index_of(Species::O3), 0, hot) = 0.25;
  const HourlyStats st = compute_hourly_stats(ds, conc, pm, 14);
  EXPECT_EQ(st.hour, 14);
  EXPECT_DOUBLE_EQ(st.max_surface_o3_ppm, 0.25);
  const Point2 expect = ds.mesh().points()[hot];
  EXPECT_DOUBLE_EQ(st.max_o3_location.x, expect.x);
  EXPECT_GT(st.mean_surface_o3_ppm, 0.01);   // pulled up by the hot spot
  EXPECT_LT(st.mean_surface_o3_ppm, 0.05);
  EXPECT_NEAR(st.mean_surface_co_ppm, 0.01, 1e-12);
}

TEST(HourlyStatsFn, RejectsShapeMismatch) {
  const Dataset ds = test_basin_dataset();
  ConcentrationField wrong(kSpeciesCount, ds.layers(), 3, 0.0);
  Array3<double> pm(kPmComponents, ds.layers(), 3, 0.0);
  EXPECT_THROW(compute_hourly_stats(ds, wrong, pm, 0), Error);
}

}  // namespace
}  // namespace airshed
