// Tests for the chemistry substrate: species registry, mechanism
// invariants (exact N and S conservation), rate evaluation, and the
// Young-Boris hybrid solver against analytic and reference solutions.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "airshed/chem/mechanism.hpp"
#include "airshed/chem/reference.hpp"
#include "airshed/chem/species.hpp"
#include "airshed/chem/youngboris.hpp"
#include "airshed/util/error.hpp"
#include "airshed/util/stats.hpp"

namespace airshed {
namespace {

std::vector<double> background_state() {
  std::vector<double> c(kSpeciesCount);
  for (int s = 0; s < kSpeciesCount; ++s) {
    c[s] = background_ppm(static_cast<Species>(s));
  }
  return c;
}

std::vector<double> urban_state() {
  std::vector<double> c = background_state();
  c[index_of(Species::NO)] = 0.02;
  c[index_of(Species::NO2)] = 0.03;
  c[index_of(Species::PAR)] = 0.3;
  c[index_of(Species::OLE)] = 0.01;
  c[index_of(Species::FORM)] = 0.01;
  c[index_of(Species::CO)] = 1.0;
  return c;
}

double total_nitrogen(std::span<const double> c) {
  double n = 0.0;
  for (int s = 0; s < kSpeciesCount; ++s) {
    n += c[s] * nitrogen_atoms(static_cast<Species>(s));
  }
  return n;
}

double total_sulfur(std::span<const double> c) {
  double n = 0.0;
  for (int s = 0; s < kSpeciesCount; ++s) {
    n += c[s] * sulfur_atoms(static_cast<Species>(s));
  }
  return n;
}

// ---------------------------------------------------------------- species

TEST(Species, RegistryHas35SpeciesWithUniqueNames) {
  EXPECT_EQ(kSpeciesCount, 35);
  std::set<std::string_view> names;
  for (Species s : all_species()) names.insert(species_name(s));
  EXPECT_EQ(names.size(), 35u);
}

TEST(Species, NameRoundTrip) {
  for (Species s : all_species()) {
    EXPECT_EQ(species_by_name(species_name(s)), s);
  }
  EXPECT_THROW(species_by_name("BOGUS"), ConfigError);
}

TEST(Species, NitrogenCounts) {
  EXPECT_EQ(nitrogen_atoms(Species::N2O5), 2);
  EXPECT_EQ(nitrogen_atoms(Species::PAN), 1);
  EXPECT_EQ(nitrogen_atoms(Species::O3), 0);
  EXPECT_EQ(sulfur_atoms(Species::SO2), 1);
  EXPECT_EQ(sulfur_atoms(Species::SULF), 1);
  EXPECT_EQ(sulfur_atoms(Species::NO), 0);
}

TEST(Species, BackgroundsArePositiveAndBounded) {
  for (Species s : all_species()) {
    EXPECT_GT(background_ppm(s), 0.0);
    EXPECT_LT(background_ppm(s), 1.0);
    EXPECT_GE(deposition_velocity_ms(s), 0.0);
  }
}

// -------------------------------------------------------------- mechanism

class MechanismReactionSweep : public ::testing::TestWithParam<int> {};

TEST_P(MechanismReactionSweep, ConservesNitrogenAndSulfurExactly) {
  const Mechanism& m = Mechanism::cb4_condensed();
  const Reaction& r = m.reactions()[GetParam()];
  EXPECT_NEAR(m.nitrogen_balance(r), 0.0, 1e-12) << "reaction " << r.label;
  EXPECT_NEAR(m.sulfur_balance(r), 0.0, 1e-12) << "reaction " << r.label;
}

INSTANTIATE_TEST_SUITE_P(
    AllReactions, MechanismReactionSweep,
    ::testing::Range(0,
                     static_cast<int>(
                         Mechanism::cb4_condensed().reaction_count())),
    [](const ::testing::TestParamInfo<int>& info) {
      return std::string(
          Mechanism::cb4_condensed().reactions()[info.param].label);
    });

TEST(Mechanism, RatesArePositiveAndPhotolysisIsZeroAtNight) {
  const Mechanism& m = Mechanism::cb4_condensed();
  std::vector<double> day(m.reaction_count()), night(m.reaction_count());
  m.compute_rates(298.0, 1.0, day);
  m.compute_rates(288.0, 0.0, night);
  for (std::size_t i = 0; i < m.reaction_count(); ++i) {
    EXPECT_GE(day[i], 0.0);
    if (m.reactions()[i].rate.kind == RateCoeff::Kind::Photolysis) {
      EXPECT_GT(day[i], 0.0) << m.reactions()[i].label;
      EXPECT_EQ(night[i], 0.0) << m.reactions()[i].label;
    } else {
      EXPECT_GT(night[i], 0.0) << m.reactions()[i].label;
    }
  }
}

TEST(Mechanism, ArrheniusAnchoredAt298) {
  // The O3 + NO rate should be ~26.6 /ppm/min at 298 K and smaller when
  // colder (positive activation energy).
  const Mechanism& m = Mechanism::cb4_condensed();
  std::size_t idx = m.reaction_count();
  for (std::size_t i = 0; i < m.reaction_count(); ++i) {
    if (m.reactions()[i].label == "O3_NO") idx = i;
  }
  ASSERT_LT(idx, m.reaction_count());
  std::vector<double> k(m.reaction_count());
  m.compute_rates(298.0, 0.0, k);
  EXPECT_NEAR(k[idx], 26.6, 0.2);
  std::vector<double> k_cold(m.reaction_count());
  m.compute_rates(278.0, 0.0, k_cold);
  EXPECT_LT(k_cold[idx], k[idx]);
}

TEST(Mechanism, ProductionLossDerivativeConservesNitrogen) {
  // Summing nitrogen-weighted (P - L c) must give zero: the instantaneous
  // rate of change of total N is zero.
  const Mechanism& m = Mechanism::cb4_condensed();
  std::vector<double> c = urban_state();
  std::vector<double> k(m.reaction_count()), p(kSpeciesCount),
      l(kSpeciesCount);
  m.compute_rates(298.0, 0.7, k);
  m.production_loss(c, k, p, l);
  double dn = 0.0, scale = 0.0;
  for (int s = 0; s < kSpeciesCount; ++s) {
    const double rate = p[s] - l[s] * c[s];
    dn += rate * nitrogen_atoms(static_cast<Species>(s));
    scale += std::abs(rate) * nitrogen_atoms(static_cast<Species>(s));
  }
  EXPECT_LT(std::abs(dn), 1e-10 * std::max(scale, 1e-30));
}

TEST(Mechanism, RejectsBadTemperature) {
  const Mechanism& m = Mechanism::cb4_condensed();
  std::vector<double> k(m.reaction_count());
  EXPECT_THROW(m.compute_rates(50.0, 0.5, k), Error);
}

// ------------------------------------------------------------ Young-Boris

TEST(YoungBoris, LinearDecayMatchesAnalytic) {
  // A mechanism with a single unary decay: c' = -k c.
  std::vector<Reaction> rs;
  Reaction r;
  r.label = "decay";
  r.reactants = {Species::CO};
  r.rate.kind = RateCoeff::Kind::Arrhenius;
  r.rate.a = 0.3;  // 1/min
  rs.push_back(r);
  Mechanism m(std::move(rs));

  std::vector<double> c(kSpeciesCount, 0.0);
  c[index_of(Species::CO)] = 2.0;
  YoungBorisSolver yb(m);
  yb.integrate(c, 10.0, 298.0, 0.5);
  EXPECT_NEAR(c[index_of(Species::CO)], 2.0 * std::exp(-3.0), 0.01);
}

TEST(YoungBoris, StiffRelaxationReachesEquilibrium) {
  // Source + very fast decay: equilibrium c* = S / k, reached instantly on
  // the integration timescale; the asymptotic branch must land on it.
  std::vector<Reaction> rs;
  Reaction r;
  r.label = "fastdecay";
  r.reactants = {Species::OH};
  r.rate.kind = RateCoeff::Kind::Arrhenius;
  r.rate.a = 1e6;  // 1/min: lifetime ~ 60 microseconds
  rs.push_back(r);
  Mechanism m(std::move(rs));

  std::vector<double> c(kSpeciesCount, 0.0);
  std::vector<double> src(kSpeciesCount, 0.0);
  src[index_of(Species::OH)] = 5.0;  // ppm/min
  YoungBorisSolver yb(m);
  const YoungBorisResult res = yb.integrate(c, 1.0, 298.0, 0.0, src);
  EXPECT_NEAR(c[index_of(Species::OH)], 5.0 / 1e6, 5e-8);
  // The stiff branch must not need microsecond substeps for this.
  EXPECT_LT(res.substeps, 200);
}

TEST(YoungBoris, ConservesNitrogenThroughFullMechanism) {
  std::vector<double> c = urban_state();
  const double n0 = total_nitrogen(c);
  const double s0 = total_sulfur(c);
  YoungBorisSolver yb(Mechanism::cb4_condensed());
  yb.integrate(c, 30.0, 298.0, 0.8);
  EXPECT_NEAR(total_nitrogen(c), n0, 2e-3 * n0);
  EXPECT_NEAR(total_sulfur(c), s0, 2e-3 * s0);
}

TEST(YoungBoris, StaysNonNegativeAndFinite) {
  std::vector<double> c = urban_state();
  YoungBorisSolver yb(Mechanism::cb4_condensed());
  for (int hour = 0; hour < 4; ++hour) {
    yb.integrate(c, 60.0, 296.0, hour % 2 == 0 ? 0.9 : 0.0);
    for (int s = 0; s < kSpeciesCount; ++s) {
      EXPECT_GE(c[s], 0.0) << species_name(s);
      EXPECT_TRUE(std::isfinite(c[s])) << species_name(s);
    }
  }
}

TEST(YoungBoris, AgreesWithQssaReferenceOnShortInterval) {
  // Cross-check against the independent semi-implicit reference at a fine
  // step; the hybrid scheme at default tolerance should land within ~10%
  // on the major species over 5 minutes.
  std::vector<double> c_yb = urban_state();
  std::vector<double> c_ref = urban_state();
  YoungBorisSolver yb(Mechanism::cb4_condensed());
  yb.integrate(c_yb, 5.0, 298.0, 0.8);
  qssa_integrate(Mechanism::cb4_condensed(), c_ref, 5.0, 100000, 298.0, 0.8);
  for (Species s : {Species::O3, Species::NO, Species::NO2, Species::CO,
                    Species::PAR, Species::FORM}) {
    EXPECT_LT(relative_error(c_yb[index_of(s)], c_ref[index_of(s)]), 0.12)
        << species_name(s) << " yb=" << c_yb[index_of(s)]
        << " ref=" << c_ref[index_of(s)];
  }
}

TEST(YoungBoris, DaytimePhotostationaryStateApproximatelyHolds) {
  // In sunlight the NO/NO2/O3 triad settles near J [NO2] = k [O3][NO].
  std::vector<double> c = urban_state();
  YoungBorisSolver yb(Mechanism::cb4_condensed());
  yb.integrate(c, 60.0, 298.0, 0.9);
  const double j = 0.533 * 0.9;
  const double k = 26.6;
  const double lhs = j * c[index_of(Species::NO2)];
  const double rhs =
      k * c[index_of(Species::O3)] * c[index_of(Species::NO)];
  EXPECT_LT(relative_error(lhs, rhs), 0.35)
      << "J*NO2=" << lhs << " k*O3*NO=" << rhs;
}

TEST(YoungBoris, DaytimeProducesOzoneFromPrecursors) {
  std::vector<double> c = urban_state();
  const double o3_start = c[index_of(Species::O3)];
  YoungBorisSolver yb(Mechanism::cb4_condensed());
  for (int i = 0; i < 4; ++i) yb.integrate(c, 60.0, 300.0, 0.9);
  EXPECT_GT(c[index_of(Species::O3)], o3_start)
      << "4 sunlit hours over precursor soup must build ozone";
}

TEST(YoungBoris, NightChemistryIsCheap) {
  std::vector<double> c = background_state();
  YoungBorisSolver yb(Mechanism::cb4_condensed());
  const YoungBorisResult day = yb.integrate(c, 10.0, 298.0, 0.9);
  const YoungBorisResult night = yb.integrate(c, 10.0, 288.0, 0.0);
  EXPECT_LT(night.corrector_evals, day.corrector_evals * 2)
      << "night stiffness should not explode";
  EXPECT_GT(night.work_flops, 0.0);
}

TEST(YoungBoris, SourceTermAccumulates) {
  std::vector<double> c = background_state();
  std::vector<double> src(kSpeciesCount, 0.0);
  src[index_of(Species::CO)] = 1e-3;  // ppm/min
  const double co0 = c[index_of(Species::CO)];
  YoungBorisSolver yb(Mechanism::cb4_condensed());
  yb.integrate(c, 30.0, 290.0, 0.0, src);
  // CO is long-lived: nearly all the injected mass remains.
  EXPECT_NEAR(c[index_of(Species::CO)], co0 + 0.03, 0.003);
}

TEST(YoungBoris, ZeroIntervalIsIdentity) {
  std::vector<double> c = urban_state();
  const std::vector<double> before = c;
  YoungBorisSolver yb(Mechanism::cb4_condensed());
  const YoungBorisResult r = yb.integrate(c, 0.0, 298.0, 0.5);
  EXPECT_EQ(c, before);
  EXPECT_EQ(r.substeps, 0);
}

TEST(YoungBoris, WorkScalesWithInterval) {
  std::vector<double> c1 = urban_state(), c2 = urban_state();
  YoungBorisSolver yb(Mechanism::cb4_condensed());
  const double w1 = yb.integrate(c1, 5.0, 298.0, 0.8).work_flops;
  const double w2 = yb.integrate(c2, 20.0, 298.0, 0.8).work_flops;
  EXPECT_GT(w2, w1);
}

TEST(YoungBoris, RejectsBadInputs) {
  YoungBorisSolver yb(Mechanism::cb4_condensed());
  std::vector<double> small(3, 0.0);
  EXPECT_THROW(yb.integrate(small, 1.0, 298.0, 0.5), Error);
  std::vector<double> c = background_state();
  EXPECT_THROW(yb.integrate(c, -1.0, 298.0, 0.5), Error);
}

// ---------------------------------------------------------- reference RK4

TEST(ReferenceIntegrators, Rk4MatchesAnalyticLinearDecay) {
  std::vector<Reaction> rs;
  Reaction r;
  r.label = "decay";
  r.reactants = {Species::CO};
  r.rate.kind = RateCoeff::Kind::Arrhenius;
  r.rate.a = 0.2;
  rs.push_back(r);
  Mechanism m(std::move(rs));
  std::vector<double> c(kSpeciesCount, 0.0);
  c[index_of(Species::CO)] = 1.0;
  rk4_integrate(m, c, 10.0, 200, 298.0, 0.0);
  EXPECT_NEAR(c[index_of(Species::CO)], std::exp(-2.0), 1e-7);
}

TEST(ReferenceIntegrators, QssaConvergesWithStepRefinement) {
  std::vector<double> coarse = urban_state(), fine = urban_state(),
                      finer = urban_state();
  const Mechanism& m = Mechanism::cb4_condensed();
  qssa_integrate(m, coarse, 2.0, 2000, 298.0, 0.8);
  qssa_integrate(m, fine, 2.0, 20000, 298.0, 0.8);
  qssa_integrate(m, finer, 2.0, 200000, 298.0, 0.8);
  const double e1 =
      relative_error(coarse[index_of(Species::O3)], finer[index_of(Species::O3)]);
  const double e2 =
      relative_error(fine[index_of(Species::O3)], finer[index_of(Species::O3)]);
  EXPECT_LT(e2, e1);  // refinement reduces error (first-order convergence)
}

}  // namespace
}  // namespace airshed
