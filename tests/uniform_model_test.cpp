// Tests for the uniform-grid 1-D Airshed variant and its executor
// semantics (transport row parallelism).
#include <gtest/gtest.h>

#include <filesystem>

#include "airshed/core/executor.hpp"
#include "airshed/core/uniform_model.hpp"
#include "airshed/io/dataset.hpp"
#include "airshed/util/error.hpp"

namespace airshed {
namespace {

UniformDataset small_uniform() {
  DatasetSpec spec = test_basin_spec();
  return build_uniform_dataset(spec, 10, 10);
}

const ModelRunResult& shared_uniform_run() {
  static const ModelRunResult run = [] {
    UniformDataset ds = small_uniform();
    ModelOptions opts;
    opts.hours = 2;
    return UniformAirshedModel(ds, opts).run();
  }();
  return run;
}

TEST(UniformModel, TraceRecordsRowParallelism) {
  const WorkTrace& t = shared_uniform_run().trace;
  EXPECT_EQ(t.dataset, "TEST-uniform");
  EXPECT_EQ(t.points, 100u);
  EXPECT_EQ(t.transport_row_parallelism, 10u);
  EXPECT_EQ(t.hours.size(), 2u);
  EXPECT_GT(t.total_chemistry_work(), 0.0);
  EXPECT_GT(t.total_transport_work(), 0.0);
}

TEST(UniformModel, OutputsArePhysical) {
  const RunOutputs& out = shared_uniform_run().outputs;
  for (double c : out.conc.flat()) {
    EXPECT_TRUE(std::isfinite(c));
    EXPECT_GE(c, 0.0);
    EXPECT_LT(c, 10.0);
  }
  for (const HourlyStats& st : out.hourly) {
    EXPECT_GT(st.max_surface_o3_ppm, 0.0);
    EXPECT_GE(st.max_surface_o3_ppm, st.mean_surface_o3_ppm);
  }
}

TEST(UniformModel, TransportScalesBeyondLayerCount) {
  // The whole point of the 1-D operator: transport time keeps falling past
  // P = layers, unlike the multiscale operator.
  const WorkTrace& t = shared_uniform_run().trace;  // 3 layers, 10 rows
  const auto trans = [&](int p) {
    return simulate_execution(t, ExecutionConfig{cray_t3e(), p})
        .ledger.category_seconds(PhaseCategory::Transport);
  };
  EXPECT_LT(trans(6), trans(3) * 0.75);
  EXPECT_LT(trans(15), trans(6) * 0.75);
  // Saturation only at layers * rows = 30 units.
  EXPECT_NEAR(trans(30), trans(128), 1e-12);
}

TEST(UniformModel, MultiscaleTraceStillSaturatesAtLayers) {
  // Control: a trace with row parallelism 1 must keep the old behavior.
  WorkTrace t = shared_uniform_run().trace;
  t.transport_row_parallelism = 1;
  const auto trans = [&](int p) {
    return simulate_execution(t, ExecutionConfig{cray_t3e(), p})
        .ledger.category_seconds(PhaseCategory::Transport);
  };
  EXPECT_DOUBLE_EQ(trans(3), trans(30));
}

TEST(UniformModel, TraceRoundTripKeepsRowParallelism) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "airshed_uniform.trace")
          .string();
  shared_uniform_run().trace.save(path);
  const WorkTrace loaded = WorkTrace::load(path);
  EXPECT_EQ(loaded.transport_row_parallelism, 10u);
  EXPECT_DOUBLE_EQ(loaded.total_transport_work(),
                   shared_uniform_run().trace.total_transport_work());
  std::filesystem::remove(path);
}

TEST(UniformModel, DoesMoreChemistryWorkThanMultiscalePerPoint) {
  // Same geography at uniform core resolution has more columns, so more
  // total Lcz work (the paper's multiscale efficiency argument). Compare
  // per-hour chemistry work normalized by the multiscale run.
  Dataset ms = test_basin_dataset();
  ModelOptions opts;
  opts.hours = 1;
  const WorkTrace ms_trace = AirshedModel(ms, opts).run().trace;
  const WorkTrace& u_trace = shared_uniform_run().trace;
  const double ms_chem_per_hour =
      ms_trace.total_chemistry_work() /
      static_cast<double>(ms_trace.hours.size());
  const double u_chem_per_hour =
      u_trace.total_chemistry_work() /
      static_cast<double>(u_trace.hours.size());
  // TEST multiscale grid has 128 points vs 100 uniform cells but fewer
  // steps; normalize by columns x steps instead: per column-step work is
  // comparable, total scales with resolution.
  EXPECT_GT(u_chem_per_hour, 0.0);
  EXPECT_GT(ms_chem_per_hour, 0.0);
}

TEST(UniformModel, RejectsBadConfig) {
  UniformDataset ds = small_uniform();
  ModelOptions opts;
  opts.hours = 0;
  EXPECT_THROW(UniformAirshedModel(ds, opts), Error);
}

}  // namespace
}  // namespace airshed
