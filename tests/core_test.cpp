// Tests for the Airshed model driver, the work trace, and the parallel
// execution simulator — the scaling properties the paper's figures rest on.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "airshed/core/executor.hpp"
#include "airshed/core/model.hpp"
#include "airshed/core/worktrace.hpp"
#include "airshed/io/dataset.hpp"
#include "airshed/util/error.hpp"

namespace airshed {
namespace {

/// One shared short physics run for all executor tests (the numerics are
/// deterministic, so sharing is sound and keeps the suite fast).
const ModelRunResult& shared_run() {
  static const ModelRunResult run = [] {
    Dataset ds = test_basin_dataset();
    ModelOptions opts;
    opts.hours = 4;  // enough hours for the pipeline tests to have depth
    return AirshedModel(ds, opts).run();
  }();
  return run;
}

TEST(Model, TraceHasExpectedShape) {
  const WorkTrace& t = shared_run().trace;
  EXPECT_EQ(t.dataset, "TEST");
  EXPECT_EQ(t.species, static_cast<std::size_t>(kSpeciesCount));
  EXPECT_EQ(t.layers, 3u);
  EXPECT_GT(t.points, 100u);
  ASSERT_EQ(t.hours.size(), 4u);
  for (const HourTrace& h : t.hours) {
    EXPECT_GT(h.input_work, 0.0);
    EXPECT_GT(h.pretrans_work, 0.0);
    EXPECT_GT(h.output_work, 0.0);
    EXPECT_GE(static_cast<int>(h.steps.size()),
              InputGenerator::kMinStepsPerHour);
    EXPECT_LE(static_cast<int>(h.steps.size()),
              InputGenerator::kMaxStepsPerHour);
    for (const StepTrace& s : h.steps) {
      EXPECT_EQ(s.transport1_layer_work.size(), t.layers);
      EXPECT_EQ(s.transport2_layer_work.size(), t.layers);
      EXPECT_EQ(s.chem_column_work.size(), t.points);
      EXPECT_GT(s.aerosol_work, 0.0);
      for (double w : s.chem_column_work) EXPECT_GT(w, 0.0);
    }
  }
}

TEST(Model, OutputsAreFiniteAndPlausible) {
  const RunOutputs& out = shared_run().outputs;
  for (double c : out.conc.flat()) {
    EXPECT_TRUE(std::isfinite(c));
    EXPECT_GE(c, 0.0);
    EXPECT_LT(c, 10.0);  // nothing exceeds 10 ppm in a plausible episode
  }
  ASSERT_EQ(out.hourly.size(), 4u);
  for (const HourlyStats& st : out.hourly) {
    EXPECT_GT(st.max_surface_o3_ppm, 0.0);
    EXPECT_LT(st.max_surface_o3_ppm, 1.0);
    EXPECT_GE(st.max_surface_o3_ppm, st.mean_surface_o3_ppm);
  }
}

TEST(Model, InitialConditionsAreBackground) {
  Dataset ds = test_basin_dataset();
  const ConcentrationField c = AirshedModel::initial_conditions(ds);
  EXPECT_EQ(c.dim0(), static_cast<std::size_t>(kSpeciesCount));
  EXPECT_DOUBLE_EQ(c(index_of(Species::O3), 0, 0),
                   background_ppm(Species::O3));
}

TEST(WorkTraceIo, SaveLoadRoundTrip) {
  const WorkTrace& t = shared_run().trace;
  const std::string path =
      (std::filesystem::temp_directory_path() / "airshed_trace_test.trace")
          .string();
  t.save(path);
  const WorkTrace loaded = WorkTrace::load(path);
  EXPECT_EQ(loaded.dataset, t.dataset);
  EXPECT_EQ(loaded.points, t.points);
  EXPECT_EQ(loaded.hours.size(), t.hours.size());
  EXPECT_DOUBLE_EQ(loaded.total_chemistry_work(), t.total_chemistry_work());
  EXPECT_DOUBLE_EQ(loaded.total_transport_work(), t.total_transport_work());
  EXPECT_DOUBLE_EQ(loaded.total_io_work(), t.total_io_work());
  EXPECT_EQ(loaded.total_steps(), t.total_steps());
  std::filesystem::remove(path);
}

TEST(WorkTraceIo, CachedGeneratesOnceThenLoads) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "airshed_cached_test.trace")
          .string();
  std::filesystem::remove(path);
  int calls = 0;
  auto produce = [&] {
    ++calls;
    return shared_run().trace;
  };
  const WorkTrace a = WorkTrace::cached(path, produce);
  const WorkTrace b = WorkTrace::cached(path, produce);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(a.points, b.points);
  std::filesystem::remove(path);
}

TEST(WorkTraceIo, LoadRejectsBadFile) {
  EXPECT_THROW(WorkTrace::load("/nonexistent/path.trace"), Error);
}

// ----------------------------------------------------------------- executor

TEST(Executor, SingleNodeHasNoNetworkCommunication) {
  const RunReport r = simulate_execution(
      shared_run().trace, ExecutionConfig{cray_t3e(), 1});
  // P=1: redistributions degenerate to local copies (H-cost only).
  EXPECT_GT(r.total_seconds, 0.0);
  EXPECT_GT(r.comm.phases, 0);
}

TEST(Executor, TimeDecreasesWithNodesThenSaturates) {
  const WorkTrace& t = shared_run().trace;
  double prev = 1e18;
  for (int p : {1, 2, 4, 8, 16, 32}) {
    const RunReport r = simulate_execution(t, ExecutionConfig{cray_t3e(), p});
    EXPECT_LT(r.total_seconds, prev * 1.001) << "P=" << p;
    prev = r.total_seconds;
  }
  // Saturation: sequential I/O + transport bound the speedup.
  const double t64 =
      simulate_execution(t, ExecutionConfig{cray_t3e(), 64}).total_seconds;
  const double t128 =
      simulate_execution(t, ExecutionConfig{cray_t3e(), 128}).total_seconds;
  EXPECT_GT(t128 / t64, 0.85) << "no meaningful speedup left at 128 nodes";
}

TEST(Executor, MachineRatiosCarryOver) {
  // §3: the machine ratios are roughly independent of node count.
  const WorkTrace& t = shared_run().trace;
  for (int p : {4, 16, 64}) {
    const double paragon =
        simulate_execution(t, ExecutionConfig{intel_paragon(), p})
            .total_seconds;
    const double t3e =
        simulate_execution(t, ExecutionConfig{cray_t3e(), p}).total_seconds;
    const double ratio = paragon / t3e;
    EXPECT_GT(ratio, 6.0) << "P=" << p;
    EXPECT_LT(ratio, 14.0) << "P=" << p;
  }
}

TEST(Executor, TransportPhaseSaturatesAtLayerCount) {
  const WorkTrace& t = shared_run().trace;  // 3 layers
  const auto trans = [&](int p) {
    return simulate_execution(t, ExecutionConfig{cray_t3e(), p})
        .ledger.category_seconds(PhaseCategory::Transport);
  };
  EXPECT_GT(trans(1), trans(3) * 1.5);
  EXPECT_DOUBLE_EQ(trans(3), trans(16));
  EXPECT_DOUBLE_EQ(trans(3), trans(128));
}

TEST(Executor, IoPhaseIsConstantInNodes) {
  const WorkTrace& t = shared_run().trace;
  const auto io = [&](int p) {
    return simulate_execution(t, ExecutionConfig{cray_t3e(), p})
        .ledger.category_seconds(PhaseCategory::IoProcessing);
  };
  EXPECT_DOUBLE_EQ(io(1), io(16));
  EXPECT_DOUBLE_EQ(io(1), io(128));
}

TEST(Executor, ChemistryScalesNearlyLinearlyAtSmallP) {
  const WorkTrace& t = shared_run().trace;
  const auto chem = [&](int p) {
    return simulate_execution(t, ExecutionConfig{cray_t3e(), p})
        .ledger.category_seconds(PhaseCategory::Chemistry);
  };
  EXPECT_NEAR(chem(2) / chem(4), 2.0, 0.35);
  EXPECT_NEAR(chem(4) / chem(8), 2.0, 0.35);
}

TEST(Executor, CommPhaseCountsMatchLoopStructure) {
  const WorkTrace& t = shared_run().trace;
  const RunReport r = simulate_execution(t, ExecutionConfig{cray_t3e(), 8});
  // Per hour: 3 per step (D_Trans->D_Chem, D_Chem->D_Repl, D_Repl->D_Trans
  // after aerosol) + first-step D_Repl->D_Trans + hour-end D_Trans->D_Repl.
  long long expect = 0;
  for (const HourTrace& h : t.hours) {
    expect += 3 * static_cast<long long>(h.steps.size()) + 2;
  }
  EXPECT_EQ(r.comm.phases, expect);
  EXPECT_GT(r.comm.chem_to_repl_s, r.comm.repl_to_trans_s);
  EXPECT_NEAR(r.comm.total(),
              r.ledger.category_seconds(PhaseCategory::Communication), 1e-9);
}

TEST(Executor, TotalEqualsLedgerForDataParallel) {
  const WorkTrace& t = shared_run().trace;
  const RunReport r = simulate_execution(t, ExecutionConfig{cray_t3d(), 16});
  EXPECT_NEAR(r.total_seconds, r.ledger.total_seconds(), 1e-9);
}

TEST(Executor, TaskParallelBeatsDataParallelAtScale) {
  // The Fig 9 claim: pipelined I/O helps at large node counts where the
  // sequential I/O stages dominate. P = 34 keeps the chemistry block size
  // identical between 34 and 32 (= 34 - 2 I/O) nodes on the 128-column
  // test grid, so the comparison isolates the pipelining benefit from the
  // HPF ceil-block quantization.
  const WorkTrace& t = shared_run().trace;
  const double dp =
      simulate_execution(t, ExecutionConfig{intel_paragon(), 34})
          .total_seconds;
  const double tp =
      simulate_execution(t, ExecutionConfig{intel_paragon(), 34,
                                            Strategy::TaskAndDataParallel})
          .total_seconds;
  EXPECT_LT(tp, dp);
}

TEST(Executor, TaskParallelNeverLosesToDataParallel) {
  // The task mapper falls back to the data-parallel schedule when the
  // dedicated I/O subgroups don't pay (paper Fig 9: the curves coincide at
  // small node counts).
  const WorkTrace& t = shared_run().trace;
  for (int p : {4, 8, 16, 64, 128}) {
    const double dp =
        simulate_execution(t, ExecutionConfig{intel_paragon(), p})
            .total_seconds;
    const double tp =
        simulate_execution(t, ExecutionConfig{intel_paragon(), p,
                                              Strategy::TaskAndDataParallel})
            .total_seconds;
    EXPECT_LE(tp, dp * 1.0000001) << "P=" << p;
  }
}

TEST(Executor, TaskParallelNeedsThreeNodes) {
  EXPECT_THROW(
      simulate_execution(shared_run().trace,
                         ExecutionConfig{cray_t3e(), 2,
                                         Strategy::TaskAndDataParallel}),
      Error);
}

TEST(Executor, PipelineStageTimesMatchHourMainSeconds) {
  const WorkTrace& t = shared_run().trace;
  const MachineModel m = cray_t3e();
  const HourStageTimes st = pipeline_stage_times(t, m, 8);
  ASSERT_EQ(st.main_s.size(), t.hours.size());
  for (std::size_t h = 0; h < t.hours.size(); ++h) {
    EXPECT_NEAR(st.main_s[h], hour_main_seconds(t, h, m, 8, nullptr, nullptr),
                1e-9);
    EXPECT_DOUBLE_EQ(
        st.input_s[h],
        m.compute_time(t.hours[h].input_work + t.hours[h].pretrans_work));
  }
}

TEST(Executor, RejectsBadConfig) {
  EXPECT_THROW(
      simulate_execution(shared_run().trace, ExecutionConfig{cray_t3e(), 0}),
      Error);
  ExecutionConfig too_big{cray_t3e(), 100000};
  EXPECT_THROW(simulate_execution(shared_run().trace, too_big), Error);
}

TEST(Executor, StrategyNames) {
  EXPECT_EQ(to_string(Strategy::DataParallel), "data-parallel");
  EXPECT_EQ(to_string(Strategy::TaskAndDataParallel), "task+data-parallel");
}

}  // namespace
}  // namespace airshed
