// Tests for the util substrate: arrays, tridiagonal solver, RNG, stats,
// tables.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "airshed/util/array.hpp"
#include "airshed/util/error.hpp"
#include "airshed/util/rng.hpp"
#include "airshed/util/stats.hpp"
#include "airshed/util/table.hpp"
#include "airshed/util/tridiag.hpp"

namespace airshed {
namespace {

TEST(Array2, IndexingIsRowMajor) {
  Array2<double> a(3, 4);
  a(1, 2) = 7.0;
  EXPECT_EQ(a.flat()[1 * 4 + 2], 7.0);
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_EQ(a.cols(), 4u);
  EXPECT_EQ(a.size(), 12u);
}

TEST(Array2, RowSpanAliasesStorage) {
  Array2<int> a(2, 3, 5);
  a.row(1)[2] = 9;
  EXPECT_EQ(a(1, 2), 9);
}

TEST(Array3, SliceIsContiguousOverLastDim) {
  Array3<double> a(2, 3, 4);
  double v = 0.0;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      for (std::size_t k = 0; k < 4; ++k) a(i, j, k) = v++;
  auto s = a.slice(1, 2);
  ASSERT_EQ(s.size(), 4u);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_EQ(s[k], a(1, 2, k));
}

TEST(Array3, FillAndEquality) {
  Array3<double> a(2, 2, 2, 1.0);
  Array3<double> b(2, 2, 2, 1.0);
  EXPECT_EQ(a, b);
  b(0, 1, 1) = 2.0;
  EXPECT_NE(a, b);
}

TEST(Tridiag, SolvesIdentity) {
  std::vector<double> lower(5, 0.0), diag(5, 1.0), upper(5, 0.0);
  std::vector<double> rhs = {1, 2, 3, 4, 5};
  std::vector<double> expect = rhs;
  solve_tridiagonal(lower, diag, upper, rhs);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(rhs[i], expect[i]);
}

TEST(Tridiag, SolvesDiffusionLikeSystem) {
  // -x[i-1] + 3 x[i] - x[i+1] = b. Verify against direct multiplication.
  const int n = 12;
  std::vector<double> lower(n, -1.0), diag(n, 3.0), upper(n, -1.0);
  std::vector<double> x_true(n);
  for (int i = 0; i < n; ++i) x_true[i] = std::sin(0.7 * i) + 2.0;
  std::vector<double> rhs(n);
  for (int i = 0; i < n; ++i) {
    rhs[i] = 3.0 * x_true[i];
    if (i > 0) rhs[i] -= x_true[i - 1];
    if (i < n - 1) rhs[i] -= x_true[i + 1];
  }
  solve_tridiagonal(lower, diag, upper, rhs);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(rhs[i], x_true[i], 1e-12);
}

TEST(Tridiag, SizeOneSystem) {
  std::vector<double> lower{0.0}, diag{4.0}, upper{0.0}, rhs{8.0};
  solve_tridiagonal(lower, diag, upper, rhs);
  EXPECT_DOUBLE_EQ(rhs[0], 2.0);
}

TEST(Tridiag, ThrowsOnZeroPivot) {
  std::vector<double> lower{0.0, 0.0}, diag{0.0, 1.0}, upper{0.0, 0.0},
      rhs{1.0, 1.0};
  EXPECT_THROW(solve_tridiagonal(lower, diag, upper, rhs), NumericalError);
}

TEST(Tridiag, ThrowsOnSizeMismatch) {
  std::vector<double> lower{0.0}, diag{1.0, 1.0}, upper{0.0, 0.0},
      rhs{1.0, 1.0};
  EXPECT_THROW(solve_tridiagonal(lower, diag, upper, rhs), Error);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalHasSaneMoments) {
  Rng r(123);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(99);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Stats, SummaryBasics) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.sum, 10.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Stats, EmptySummaryIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(1.0, 1.0), 0.0);
  EXPECT_NEAR(relative_error(1.0, 1.1), 0.1 / 1.1, 1e-12);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
}

TEST(Stats, RmsAndMaxDifference) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {1.0, 2.0, 4.0};
  EXPECT_NEAR(rms_difference(a, b), std::sqrt(1.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(max_abs_difference(a, b), 1.0);
  std::vector<double> c = {1.0};
  EXPECT_THROW((void)rms_difference(a, c), ConfigError);
}

TEST(Table, RendersAlignedColumnsAndCsv) {
  Table t({"name", "value"});
  t.row().add("alpha").add(1.5, 2);
  t.row().add("b").add(42LL);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("b,42"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, QuotesCsvSpecials) {
  Table t({"x"});
  t.row().add("a,b");
  EXPECT_NE(t.to_csv().find("\"a,b\""), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.row().add("ok");
  EXPECT_THROW(t.add("overflow"), Error);
}

TEST(ErrorMacros, RequireThrowsWithContext) {
  try {
    AIRSHED_REQUIRE(false, "the message");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("the message"), std::string::npos);
  }
}

TEST(FormatSeconds, PicksSensibleUnits) {
  EXPECT_NE(format_seconds(123.4).find("s"), std::string::npos);
  EXPECT_NE(format_seconds(0.005).find("ms"), std::string::npos);
  EXPECT_NE(format_seconds(2e-6).find("us"), std::string::npos);
}

}  // namespace
}  // namespace airshed
