// Tests for airshed::svc — the resilient multi-scenario batch supervisor:
// seeded job mixes (bounded-Pareto episode lengths), pure retry/backoff/
// fault-injection decisions, failure isolation (quarantine never aborts the
// batch), graceful degradation to the coarse uniform grid, circuit-breaker
// determinism, the durable batch archive, and the headline property: the
// same (batch_seed, chaos plan) yields byte-identical batch reports and
// manifests at 1, 2 and 8 threads.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "airshed/core/model.hpp"
#include "airshed/core/uniform_model.hpp"
#include "airshed/durable/container.hpp"
#include "airshed/durable/journal.hpp"
#include "airshed/fault/killpoint.hpp"
#include "airshed/obs/metrics.hpp"
#include "airshed/svc/archive.hpp"
#include "airshed/svc/input_cache.hpp"
#include "airshed/svc/journal.hpp"
#include "airshed/svc/scenario.hpp"
#include "airshed/svc/supervisor.hpp"
#include "airshed/util/error.hpp"
#include "airshed/util/hash.hpp"

namespace airshed {
namespace {

namespace fs = std::filesystem;
using svc::BatchArchive;
using svc::BatchOptions;
using svc::BatchReport;
using svc::BatchSupervisor;
using svc::ChaosOptions;
using svc::FaultClass;
using svc::JobMixOptions;
using svc::ScenarioSpec;
using svc::ScenarioStatus;

/// Fresh scratch directory per test (removed on teardown).
class SvcDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("airshed_svc_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

/// Small, fast job mix: TEST dataset, short episodes.
JobMixOptions tiny_mix(int scenarios) {
  JobMixOptions mix;
  mix.scenarios = scenarios;
  mix.dataset = "TEST";
  mix.hours_min = 1;
  mix.hours_max = 2;
  return mix;
}

TEST(JobMix, DeterministicInSeed) {
  const auto a = svc::make_job_mix(1234, tiny_mix(8));
  const auto b = svc::make_job_mix(1234, tiny_mix(8));
  ASSERT_EQ(a.size(), 8u);
  EXPECT_EQ(a, b);

  const auto c = svc::make_job_mix(1235, tiny_mix(8));
  EXPECT_NE(a, c);

  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a[static_cast<std::size_t>(i)].id, i);
    EXPECT_GE(a[static_cast<std::size_t>(i)].hours, 1);
    EXPECT_LE(a[static_cast<std::size_t>(i)].hours, 2);
  }
}

TEST(JobMix, BoundedParetoStaysInRangeAndIsHeavyTailed) {
  // Monotone inverse CDF within [lo, hi].
  EXPECT_DOUBLE_EQ(svc::bounded_pareto(0.0, 2.0, 8.0, 1.1), 2.0);
  double prev = 0.0;
  for (double u = 0.0; u < 1.0; u += 0.01) {
    const double x = svc::bounded_pareto(u, 2.0, 8.0, 1.1);
    EXPECT_GE(x, 2.0);
    EXPECT_LE(x, 8.0 + 1e-9);
    EXPECT_GE(x, prev);
    prev = x;
  }

  // Heavy tail: most mass near the minimum.
  JobMixOptions mix;
  mix.scenarios = 200;
  mix.hours_min = 2;
  mix.hours_max = 12;
  mix.hours_alpha = 1.1;
  int at_min = 0, at_max = 0;
  for (const ScenarioSpec& s : svc::make_job_mix(99, mix)) {
    at_min += s.hours <= 3;
    at_max += s.hours >= 11;
  }
  EXPECT_GT(at_min, at_max * 2);
}

TEST(Decisions, PureInSeedScenarioAttempt) {
  ChaosOptions chaos;
  chaos.node_death = 0.2;
  chaos.straggler = 0.2;
  chaos.storage_fault = 0.2;
  chaos.numerics = 0.2;
  BatchOptions opts;
  opts.batch_seed = 77;

  for (int id = 0; id < 16; ++id) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      EXPECT_EQ(svc::injected_fault(77, id, attempt, chaos),
                svc::injected_fault(77, id, attempt, chaos));
      EXPECT_DOUBLE_EQ(svc::straggler_factor(77, id, attempt, chaos),
                       svc::straggler_factor(77, id, attempt, chaos));
      const double s = svc::straggler_factor(77, id, attempt, chaos);
      EXPECT_GE(s, 1.0);
      EXPECT_LE(s, chaos.straggler_cap + 1e-9);
      EXPECT_EQ(svc::death_hour(77, id, attempt, 6),
                svc::death_hour(77, id, attempt, 6));
      EXPECT_GE(svc::death_hour(77, id, attempt, 6), 0);
      EXPECT_LT(svc::death_hour(77, id, attempt, 6), 6);
    }
    for (int attempt = 1; attempt < 5; ++attempt) {
      const double b = svc::backoff_ms(77, id, attempt, opts);
      EXPECT_DOUBLE_EQ(b, svc::backoff_ms(77, id, attempt, opts));
      const double cap = std::min(
          opts.backoff_base_ms * std::ldexp(1.0, attempt - 1),
          opts.backoff_cap_ms);
      EXPECT_GE(b, 0.5 * cap);
      EXPECT_LT(b, cap);
    }
  }

  // Fault classes are mutually exclusive draws: probabilities 0 mean the
  // class never fires.
  ChaosOptions none;
  for (int id = 0; id < 32; ++id) {
    EXPECT_EQ(svc::injected_fault(1, id, 0, none), FaultClass::None);
  }
}

ChaosOptions full_chaos() {
  ChaosOptions chaos;
  chaos.node_death = 0.15;
  chaos.straggler = 0.2;
  chaos.storage_fault = 0.1;
  chaos.payload_corruption = 0.05;
  chaos.numerics = 0.1;
  chaos.hang = 0.1;
  chaos.poison_scenarios = {2};
  return chaos;
}

TEST_F(SvcDir, BatchReportByteIdenticalAcrossThreadCounts) {
  const auto specs = svc::make_job_mix(7, tiny_mix(6));

  std::string reference_report;
  std::string reference_manifest;
  for (int threads : {1, 2, 8}) {
    const std::string archive_dir =
        path("archive_t" + std::to_string(threads));
    BatchOptions opts;
    opts.batch_seed = 7;
    opts.threads = threads;
    opts.chaos = full_chaos();
    opts.archive_dir = archive_dir;

    const BatchReport report = BatchSupervisor(opts).run(specs);
    const std::string json = report.canonical_json().str();
    const std::string manifest = durable::read_file_bytes(
        BatchArchive(archive_dir).manifest_path());
    if (reference_report.empty()) {
      reference_report = json;
      reference_manifest = manifest;
      // The chaos plan must actually be doing something for this test to
      // mean anything.
      EXPECT_GT(report.retries, 0);
      EXPECT_GT(report.degraded + report.quarantined, 0);
    } else {
      EXPECT_EQ(json, reference_report) << "threads=" << threads;
      EXPECT_EQ(manifest, reference_manifest) << "threads=" << threads;
    }
  }
}

TEST_F(SvcDir, QuarantineIsolatesFailuresWithoutAbortingTheBatch) {
  auto specs = svc::make_job_mix(3, tiny_mix(4));
  BatchOptions opts;
  opts.batch_seed = 3;
  opts.threads = 2;
  opts.max_attempts = 2;
  opts.degrade = false;  // exhausted scenarios quarantine directly
  opts.chaos.poison_scenarios = {0, 2};
  opts.archive_dir = path("archive");

  const BatchReport report = BatchSupervisor(opts).run(specs);
  ASSERT_EQ(report.results.size(), 4u);
  EXPECT_EQ(report.quarantined, 2);
  EXPECT_EQ(report.completed, 2);

  for (int id : {0, 2}) {
    const svc::ScenarioResult& r = report.results[static_cast<std::size_t>(id)];
    EXPECT_EQ(r.status, ScenarioStatus::Quarantined);
    EXPECT_EQ(r.attempts.size(), 2u);  // max_attempts, then isolation
    // The poisoned stack trips the kernel block tripwire: a typed
    // scenario fault, not an infrastructure fault.
    EXPECT_FALSE(r.attempts.back().infra);
    EXPECT_NE(r.quarantine_reason.find("non-finite"), std::string::npos)
        << r.quarantine_reason;
  }
  for (int id : {1, 3}) {
    EXPECT_EQ(report.results[static_cast<std::size_t>(id)].status,
              ScenarioStatus::Ok);
  }
}

TEST_F(SvcDir, DegradedScenarioMatchesDirectCoarseRunBitForBit) {
  auto specs = svc::make_job_mix(11, tiny_mix(3));
  BatchOptions opts;
  opts.batch_seed = 11;
  opts.threads = 2;
  opts.max_attempts = 2;
  opts.chaos.poison_scenarios = {1};
  opts.archive_dir = path("archive");

  const BatchReport report = BatchSupervisor(opts).run(specs);
  const svc::ScenarioResult& r = report.results[1];
  ASSERT_EQ(r.status, ScenarioStatus::Degraded);
  EXPECT_TRUE(r.attempts.back().degraded_run);

  // The degraded result is the coarse uniform model on the scenario's own
  // inputs — reproducible outside the supervisor.
  ModelOptions mo;
  mo.hours = specs[1].hours;
  mo.host_threads = 1;
  const ModelRunResult direct =
      UniformAirshedModel(svc::build_degraded_dataset(specs[1], 8, 8), mo)
          .run();
  EXPECT_EQ(r.checksum, hash_hex(svc::field_digest(direct.outputs)));
}

TEST_F(SvcDir, CleanBatchChecksumsMatchFaultFreeSoloRuns) {
  const auto specs = svc::make_job_mix(21, tiny_mix(3));
  BatchOptions opts;
  opts.batch_seed = 21;
  opts.threads = 3;
  opts.archive_dir = path("archive");

  const BatchReport report = BatchSupervisor(opts).run(specs);
  EXPECT_EQ(report.completed, 3);
  EXPECT_EQ(report.retries, 0);
  for (const svc::ScenarioResult& r : report.results) {
    ModelOptions mo;
    mo.hours = r.spec.hours;
    mo.host_threads = 1;
    const ModelRunResult solo =
        AirshedModel(svc::build_scenario_dataset(r.spec), mo).run();
    EXPECT_EQ(r.checksum, hash_hex(svc::field_digest(solo.outputs)))
        << "scenario " << r.spec.id;
  }
}

TEST_F(SvcDir, InfraFaultsRetryToTheFaultFreeResult) {
  // Infrastructure-only chaos: retried scenarios must converge to exactly
  // the fault-free checksum (the work is deterministic; only the machinery
  // flakes).
  const auto specs = svc::make_job_mix(31, tiny_mix(4));
  BatchOptions opts;
  opts.batch_seed = 31;
  opts.threads = 2;
  opts.max_attempts = 4;
  opts.chaos.node_death = 0.4;
  opts.chaos.storage_fault = 0.2;
  opts.archive_dir = path("archive");

  const BatchReport report = BatchSupervisor(opts).run(specs);
  EXPECT_GT(report.infra_faults, 0);
  for (const svc::ScenarioResult& r : report.results) {
    if (r.status == ScenarioStatus::Quarantined) continue;
    if (r.status == ScenarioStatus::Degraded) continue;
    ModelOptions mo;
    mo.hours = r.spec.hours;
    mo.host_threads = 1;
    const ModelRunResult solo =
        AirshedModel(svc::build_scenario_dataset(r.spec), mo).run();
    EXPECT_EQ(r.checksum, hash_hex(svc::field_digest(solo.outputs)))
        << "scenario " << r.spec.id;
  }
}

TEST_F(SvcDir, CircuitBreakerTripsDeterministically) {
  const auto specs = svc::make_job_mix(5, tiny_mix(8));
  BatchOptions opts;
  opts.batch_seed = 5;
  opts.threads = 4;
  opts.max_attempts = 3;
  opts.breaker_threshold = 2;
  opts.breaker_cooldown_rounds = 1;
  opts.chaos.node_death = 0.7;  // infra-heavy: the breaker must trip
  opts.archive_dir = path("archive_a");

  const BatchReport a = BatchSupervisor(opts).run(specs);
  EXPECT_GT(a.breaker_trips, 0);
  ASSERT_FALSE(a.breaker_events.empty());
  EXPECT_EQ(a.breaker_events.front().transition, "open");

  // Same seed, different thread count and archive dir: identical breaker
  // history and identical report bytes.
  opts.threads = 1;
  opts.archive_dir = path("archive_b");
  const BatchReport b = BatchSupervisor(opts).run(specs);
  EXPECT_EQ(a.canonical_json().str(), b.canonical_json().str());
}

TEST_F(SvcDir, DeadlineWatchdogClassifiesStragglersAsInfra) {
  const auto specs = svc::make_job_mix(13, tiny_mix(2));
  BatchOptions opts;
  opts.batch_seed = 13;
  opts.threads = 2;
  opts.max_attempts = 1;
  opts.chaos.straggler = 1.0;  // every fine-grid attempt straggles
  opts.chaos.straggler_alpha = 0.2;  // heavy tail: big slowdowns likely
  opts.deadline_factor = 0.5;  // and the deadline is tight
  opts.archive_dir = path("archive");

  const BatchReport report = BatchSupervisor(opts).run(specs);
  EXPECT_GT(report.infra_faults, 0);
  bool saw_deadline = false;
  for (const svc::ScenarioResult& r : report.results) {
    for (const svc::AttemptRecord& a : r.attempts) {
      if (a.error.find("deadline") != std::string::npos) {
        EXPECT_TRUE(a.infra);
        saw_deadline = true;
      }
    }
    // Degradation rescues every deadline victim: the coarse grid runs
    // chaos-free.
    EXPECT_NE(r.status, ScenarioStatus::Quarantined);
  }
  EXPECT_TRUE(saw_deadline);
}

TEST_F(SvcDir, StorageChaosQuarantinesTheCorruptArtifact) {
  const auto specs = svc::make_job_mix(17, tiny_mix(2));
  BatchOptions opts;
  opts.batch_seed = 17;
  opts.threads = 1;
  opts.max_attempts = 1;
  opts.degrade = false;
  opts.chaos.storage_fault = 1.0;  // every archive write is attacked
  opts.archive_dir = path("archive");

  const BatchReport report = BatchSupervisor(opts).run(specs);
  EXPECT_EQ(report.quarantined, 2);
  for (const svc::ScenarioResult& r : report.results) {
    EXPECT_EQ(r.status, ScenarioStatus::Quarantined);
    EXPECT_TRUE(r.attempts.back().infra);
  }
  // Detected-corrupt artifacts were renamed *.corrupt (LostRename leaves
  // nothing behind); no un-quarantined .result file may remain.
  for (const fs::directory_entry& e : fs::directory_iterator(path("archive"))) {
    const std::string name = e.path().filename().string();
    EXPECT_TRUE(name.find(".result") == std::string::npos ||
                name.find(".corrupt") != std::string::npos)
        << "corrupt artifact left in place: " << name;
  }
}

TEST_F(SvcDir, ArchiveRoundTripAndManifest) {
  BatchArchive archive(path("archive"));
  ScenarioSpec spec;
  spec.id = 4;
  spec.name = "scn-004";
  spec.dataset = "TEST";
  spec.hours = 2;
  spec.controls.nox_scale = 0.8;
  spec.emission_perturbation = 1.05;

  std::vector<HourlyStats> hourly(2);
  hourly[0].hour = 0;
  hourly[0].max_surface_o3_ppm = 0.08;
  hourly[1].hour = 1;
  hourly[1].mean_surface_no2_ppm = 0.002;

  const std::string file =
      archive.write_result(spec, "ok", 1, 0xdeadbeefULL, hourly);
  const BatchArchive::StoredResult stored = BatchArchive::read_result(file);
  EXPECT_EQ(stored.spec, spec);
  EXPECT_EQ(stored.status, "ok");
  EXPECT_EQ(stored.attempt, 1);
  EXPECT_EQ(stored.checksum, 0xdeadbeefULL);
  ASSERT_EQ(stored.hourly.size(), 2u);
  EXPECT_DOUBLE_EQ(stored.hourly[0].max_surface_o3_ppm, 0.08);
  EXPECT_DOUBLE_EQ(stored.hourly[1].mean_surface_no2_ppm, 0.002);

  archive.write_manifest(
      7, {{4, "ok", 1, 0xdeadbeefULL, "scn_004_a01.result"}});
  const BatchArchive::Manifest m = archive.read_manifest();
  EXPECT_EQ(m.batch_seed, 7u);
  ASSERT_EQ(m.entries.size(), 1u);
  EXPECT_EQ(m.entries[0].id, 4);
  EXPECT_EQ(m.entries[0].file, "scn_004_a01.result");

  // Quarantine renames; a second quarantine of the missing file is a no-op.
  const std::string q = BatchArchive::quarantine(file);
  EXPECT_EQ(q, file + ".corrupt");
  EXPECT_FALSE(fs::exists(file));
  EXPECT_TRUE(fs::exists(q));
  EXPECT_EQ(BatchArchive::quarantine(file), "");
}

TEST_F(SvcDir, MetricsPublishTheReportCounts) {
  const auto specs = svc::make_job_mix(7, tiny_mix(4));
  BatchOptions opts;
  opts.batch_seed = 7;
  opts.threads = 2;
  opts.chaos.poison_scenarios = {0};
  opts.archive_dir = path("archive");
  obs::MetricsRegistry registry;
  opts.metrics = &registry;

  const BatchReport report = BatchSupervisor(opts).run(specs);
  EXPECT_EQ(registry.counter("svc/scenarios").value(), 4);
  EXPECT_EQ(registry.counter("svc/completed").value(), report.completed);
  EXPECT_EQ(registry.counter("svc/degraded").value(), report.degraded);
  EXPECT_EQ(registry.counter("svc/quarantined").value(), report.quarantined);
  EXPECT_EQ(registry.counter("svc/retries").value(), report.retries);
  EXPECT_EQ(registry.counter("svc/scenario_faults").value(),
            report.scenario_faults);
  EXPECT_GT(report.scenario_faults, 0);  // the poisoned scenario
}

// ---------------------------------------------------------------------------
// Crash–resume: the write-ahead batch journal (PR 8 tentpole).
// ---------------------------------------------------------------------------

/// Every file in the archive dir, name -> bytes, excluding the journal
/// (whose record *rounds* legitimately differ between an uninterrupted run
/// and a resumed one — the contract is archive + manifest identity).
std::map<std::string, std::string> archive_bytes(const std::string& dir) {
  std::map<std::string, std::string> out;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name == "batch.journal") continue;
    out[name] = durable::read_file_bytes(e.path().string());
  }
  return out;
}

BatchOptions journaled_opts(std::uint64_t seed, const std::string& dir) {
  BatchOptions opts;
  opts.batch_seed = seed;
  opts.threads = 1;
  opts.archive_dir = dir;
  opts.journal_path = dir + "/batch.journal";
  return opts;
}

/// The headline robustness property: SIGKILL the supervisor at EVERY
/// journal record boundary (torn mid-append and just after the fsync), then
/// resume — the final archive and manifest are byte-identical to an
/// uninterrupted run, across resume thread counts.
TEST_F(SvcDir, SigkillAtEveryJournalRecordBoundaryResumesByteIdentical) {
  const auto specs = svc::make_job_mix(7, tiny_mix(3));

  // Uninterrupted reference.
  const std::string ref_dir = path("ref");
  BatchOptions ref_opts = journaled_opts(7, ref_dir);
  ref_opts.chaos = full_chaos();
  const BatchReport ref_report = BatchSupervisor(ref_opts).run(specs);
  EXPECT_GT(ref_report.retries, 0);  // the chaos plan must bite
  const auto ref_files = archive_bytes(ref_dir);
  const std::uint64_t frames =
      svc::BatchJournal::replay(ref_dir + "/batch.journal").raw.records.size();
  ASSERT_GT(frames, 6u);

  int point = 0;
  for (std::uint64_t k = 0; k < frames; ++k) {
    for (durable::JournalKillAction action :
         {durable::JournalKillAction::KillMid,
          durable::JournalKillAction::KillAfter}) {
      const std::string dir = path("crash_" + std::to_string(point));
      const pid_t child = fork();
      ASSERT_GE(child, 0);
      if (child == 0) {
        // In the child: arm the kill point and run the batch. The armed
        // append SIGKILLs the process; anything else is a test bug.
        fault::arm_kill_point(k, action);
        BatchOptions opts = journaled_opts(7, dir);
        opts.chaos = full_chaos();
        try {
          BatchSupervisor(opts).run(specs);
        } catch (...) {
          _exit(3);
        }
        _exit(0);
      }
      int status = 0;
      ASSERT_EQ(::waitpid(child, &status, 0), child);
      ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
          << "kill point " << k << " did not fire (status " << status << ")";

      // Recover: resume if the journal header survived, start fresh if the
      // crash predates a durable header. Rotate thread counts to prove the
      // resume is thread-count invariant.
      BatchOptions opts = journaled_opts(7, dir);
      opts.chaos = full_chaos();
      opts.threads = point % 3 == 0 ? 1 : (point % 3 == 1 ? 2 : 8);
      opts.resume = svc::BatchJournal::replay(dir + "/batch.journal").existed;
      const BatchReport report = BatchSupervisor(opts).run(specs);
      EXPECT_EQ(report.resumed, opts.resume);
      EXPECT_EQ(archive_bytes(dir), ref_files)
          << "kill point " << k << " action "
          << (action == durable::JournalKillAction::KillMid ? "mid" : "after")
          << " resume threads " << opts.threads;
      fs::remove_all(dir);
      ++point;
    }
  }
}

/// Resuming a sealed batch replays every commit from the journal and
/// re-executes nothing — the metrics prove completed scenarios never run
/// twice.
TEST_F(SvcDir, ResumeOfSealedBatchReplaysCommitsWithoutReexecution) {
  const auto specs = svc::make_job_mix(21, tiny_mix(3));
  BatchOptions opts = journaled_opts(21, path("a"));
  const BatchReport first = BatchSupervisor(opts).run(specs);
  EXPECT_EQ(first.completed, 3);

  obs::MetricsRegistry registry;
  opts.resume = true;
  opts.metrics = &registry;
  const BatchReport again = BatchSupervisor(opts).run(specs);
  EXPECT_TRUE(again.resumed);
  EXPECT_EQ(again.replayed_commits, 3);
  EXPECT_EQ(again.reexecuted, 0);
  EXPECT_EQ(again.completed, 3);
  EXPECT_EQ(registry.counter("svc/replayed_commits").value(), 3);
  EXPECT_EQ(registry.counter("svc/reexecuted").value(), 0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(again.results[i].checksum, first.results[i].checksum);
    EXPECT_EQ(again.results[i].status, ScenarioStatus::Ok);
  }
}

/// A journaled commit is a claim, not the proof: resume re-validates the
/// artifact digest, quarantines a damaged file, and re-executes the
/// scenario to a byte-identical replacement.
TEST_F(SvcDir, ResumeQuarantinesCorruptCommittedArtifactAndRewritesIt) {
  const auto specs = svc::make_job_mix(33, tiny_mix(2));
  BatchOptions opts = journaled_opts(33, path("a"));
  const BatchReport first = BatchSupervisor(opts).run(specs);
  ASSERT_EQ(first.completed, 2);

  const BatchArchive archive(path("a"));
  const BatchArchive::Manifest manifest = archive.read_manifest();
  const std::string victim = path("a/" + manifest.entries[0].file);
  std::string bytes = durable::read_file_bytes(victim);
  bytes[bytes.size() / 2] ^= 0x40;
  std::ofstream(victim, std::ios::binary | std::ios::trunc) << bytes;
  const std::string pristine = durable::read_file_bytes(
      path("a/" + manifest.entries[1].file));

  opts.resume = true;
  const BatchReport report = BatchSupervisor(opts).run(specs);
  EXPECT_EQ(report.replay_quarantined, 1);
  EXPECT_EQ(report.replayed_commits, 1);
  EXPECT_EQ(report.reexecuted, 1);
  EXPECT_EQ(report.completed, 2);
  EXPECT_EQ(report.results[0].checksum, first.results[0].checksum);

  // The damaged generation is preserved as evidence; the rewritten file
  // validates again, and the untouched artifact was not rewritten.
  EXPECT_TRUE(fs::exists(victim + ".corrupt"));
  EXPECT_EQ(BatchArchive::read_result(victim).checksum,
            manifest.entries[0].checksum);
  EXPECT_EQ(durable::read_file_bytes(path("a/" + manifest.entries[1].file)),
            pristine);
}

/// The virtual-time watchdog reclaims hung scenarios: a typed infra fault
/// feeds the retry ladder (and the breaker) instead of wedging the batch.
TEST_F(SvcDir, WatchdogReclaimsHungScenarios) {
  const auto specs = svc::make_job_mix(19, tiny_mix(2));
  BatchOptions opts;
  opts.batch_seed = 19;
  opts.threads = 2;
  opts.max_attempts = 2;
  opts.chaos.hang = 1.0;  // every fine-grid attempt wedges
  opts.archive_dir = path("a");

  const BatchReport report = BatchSupervisor(opts).run(specs);
  EXPECT_GE(report.watchdog_fires, 2);
  bool saw_watchdog = false;
  for (const svc::ScenarioResult& r : report.results) {
    // Degradation rescues every hang victim (the coarse grid runs
    // chaos-free).
    EXPECT_EQ(r.status, ScenarioStatus::Degraded);
    for (const svc::AttemptRecord& a : r.attempts) {
      if (!a.watchdog) continue;
      saw_watchdog = true;
      EXPECT_TRUE(a.infra);
      EXPECT_NE(a.error.find("watchdog"), std::string::npos) << a.error;
    }
  }
  EXPECT_TRUE(saw_watchdog);

  // Watchdog disabled: the same hang is only caught by the deadline (when
  // one is armed), never classified as a watchdog fire.
  opts.watchdog_budget_factor = 0.0;
  opts.archive_dir = path("b");
  const BatchReport undogged = BatchSupervisor(opts).run(specs);
  EXPECT_EQ(undogged.watchdog_fires, 0);
}

/// Bounded admission: over-depth scenarios are shed deterministically
/// (keep-lowest-id), recorded in the report and manifest, and the in-flight
/// cap throttles without changing any result.
TEST_F(SvcDir, AdmissionShedsDeterministicallyAndInFlightCapPreservesResults) {
  const auto specs = svc::make_job_mix(9, tiny_mix(8));

  BatchOptions opts;
  opts.batch_seed = 9;
  opts.threads = 4;
  opts.max_queue_depth = 5;
  opts.archive_dir = path("a");
  const BatchReport a = BatchSupervisor(opts).run(specs);
  EXPECT_EQ(a.shed, 3);
  EXPECT_EQ(a.completed, 5);
  for (int id = 0; id < 8; ++id) {
    const svc::ScenarioResult& r = a.results[static_cast<std::size_t>(id)];
    if (id < 5) {
      EXPECT_EQ(r.status, ScenarioStatus::Ok) << id;
    } else {
      EXPECT_EQ(r.status, ScenarioStatus::Shed) << id;
      EXPECT_NE(r.quarantine_reason.find("shed"), std::string::npos);
      EXPECT_TRUE(r.attempts.empty());  // shed work never executes
    }
  }
  const BatchArchive::Manifest m = BatchArchive(path("a")).read_manifest();
  ASSERT_EQ(m.entries.size(), 8u);
  EXPECT_EQ(m.entries[7].status, "shed");
  EXPECT_EQ(m.entries[7].attempt, -1);
  EXPECT_TRUE(m.entries[7].file.empty());

  // Same seed, different thread count: identical report bytes.
  opts.threads = 1;
  opts.archive_dir = path("b");
  const BatchReport b = BatchSupervisor(opts).run(specs);
  EXPECT_EQ(a.canonical_json().str(), b.canonical_json().str());

  // The in-flight cap only throttles dispatch; every kept scenario still
  // completes with the identical checksum.
  opts.max_in_flight = 2;
  opts.archive_dir = path("c");
  const BatchReport c = BatchSupervisor(opts).run(specs);
  EXPECT_EQ(c.shed, 3);
  EXPECT_EQ(c.completed, 5);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(c.results[i].status, a.results[i].status);
    EXPECT_EQ(c.results[i].checksum, a.results[i].checksum);
  }
}

/// Guard rails: a fresh run refuses to overwrite an unsealed journal, and
/// resume refuses a journal from a different batch.
TEST_F(SvcDir, JournalGuardsRefuseOverwriteAndMismatchedResume) {
  const auto specs = svc::make_job_mix(21, tiny_mix(2));
  BatchOptions opts = journaled_opts(21, path("a"));
  fs::create_directories(path("a"));

  {
    // Simulate a crashed batch: header + one start record, never sealed.
    svc::BatchJournal j(opts.journal_path, opts, specs);
    j.start(0, 0, 0, false);
  }
  EXPECT_THROW(BatchSupervisor(opts).run(specs), ConfigError);

  // Resume under a different seed (and so a different decision stream).
  BatchOptions other = opts;
  other.batch_seed = 22;
  other.resume = true;
  EXPECT_THROW(BatchSupervisor(other).run(specs), ConfigError);

  // Resume with no journal at all.
  BatchOptions missing = journaled_opts(21, path("b"));
  fs::create_directories(path("b"));
  missing.resume = true;
  EXPECT_THROW(BatchSupervisor(missing).run(specs), ConfigError);

  // The crashed batch resumes cleanly; once sealed, its journal MAY be
  // overwritten by a fresh run.
  BatchOptions cont = opts;
  cont.resume = true;
  const BatchReport done = BatchSupervisor(cont).run(specs);
  EXPECT_TRUE(done.resumed);
  EXPECT_EQ(done.completed + done.degraded + done.quarantined, 2);
  const BatchReport redo = BatchSupervisor(opts).run(specs);
  EXPECT_EQ(redo.resumed, false);
}

/// Repeat quarantines of the same artifact path number their evidence
/// files instead of overwriting prior generations.
TEST_F(SvcDir, QuarantineNumbersRepeatedCollisions) {
  BatchArchive archive(path("a"));
  ScenarioSpec spec;
  spec.id = 1;
  spec.name = "scn-001";
  spec.dataset = "TEST";
  spec.hours = 1;

  const std::string file = archive.write_result(spec, "ok", 1, 1, {});
  EXPECT_EQ(BatchArchive::quarantine(file), file + ".corrupt");
  archive.write_result(spec, "ok", 1, 2, {});
  EXPECT_EQ(BatchArchive::quarantine(file), file + ".corrupt.1");
  archive.write_result(spec, "ok", 1, 3, {});
  EXPECT_EQ(BatchArchive::quarantine(file), file + ".corrupt.2");
  EXPECT_TRUE(fs::exists(file + ".corrupt"));
  EXPECT_TRUE(fs::exists(file + ".corrupt.1"));
  EXPECT_TRUE(fs::exists(file + ".corrupt.2"));
  EXPECT_EQ(BatchArchive::read_result(file + ".corrupt").checksum, 1u);
  EXPECT_EQ(BatchArchive::read_result(file + ".corrupt.2").checksum, 3u);
}

// ---------------------------------------------------- throughput engine

/// FNV digest over a mesh's vertex coordinates: the immutability tripwire
/// for the shared input cache.
std::uint64_t mesh_bytes_digest(const TriMesh& mesh) {
  const std::span<const Point2> pts = mesh.points();
  return fnv1a_bytes(std::string_view(
      reinterpret_cast<const char*>(pts.data()), pts.size() * sizeof(Point2)));
}

/// The tentpole invariant: input sharing, resident engines and the fair
/// schedule are throughput knobs only. Under full chaos, every combination
/// at 1, 2 and 8 threads produces byte-identical manifests — and within a
/// schedule, byte-identical canonical reports.
TEST_F(SvcDir, SharingResidencyScheduleSweepIsByteIdentical) {
  const auto specs = svc::make_job_mix(7, tiny_mix(6));

  std::map<std::string, std::string> reference_report;  // keyed by schedule
  std::string reference_manifest;
  int config = 0;
  for (bool share : {false, true}) {
    for (bool resident : {false, true}) {
      for (svc::Schedule schedule : {svc::Schedule::Fifo, svc::Schedule::Fair}) {
        for (int threads : {1, 2, 8}) {
          BatchOptions opts;
          opts.batch_seed = 7;
          opts.threads = threads;
          opts.chaos = full_chaos();
          opts.share_inputs = share;
          opts.resident = resident;
          opts.schedule = schedule;
          opts.archive_dir = path("archive_" + std::to_string(config++));

          const BatchReport report = BatchSupervisor(opts).run(specs);
          const std::string json = report.canonical_json().str();
          const std::string manifest = durable::read_file_bytes(
              BatchArchive(opts.archive_dir).manifest_path());
          const std::string key = svc::to_string(schedule);
          if (!reference_manifest.empty()) {
            EXPECT_EQ(manifest, reference_manifest)
                << "share=" << share << " resident=" << resident
                << " schedule=" << key << " threads=" << threads;
          } else {
            reference_manifest = manifest;
            EXPECT_GT(report.retries, 0);  // chaos must bite
          }
          if (reference_report.count(key)) {
            EXPECT_EQ(json, reference_report[key])
                << "share=" << share << " resident=" << resident
                << " threads=" << threads;
          } else {
            reference_report[key] = json;
          }
          // The sharing counters move with the knobs, never the science.
          if (share) {
            EXPECT_GT(report.input_cache_hits, 0);
            EXPECT_GE(report.input_cache_misses, 1);
          } else {
            EXPECT_EQ(report.input_cache_hits, 0);
            EXPECT_EQ(report.input_cache_misses, 0);
          }
          if (!resident) {
            EXPECT_EQ(report.engine_reuses, 0);
            EXPECT_EQ(report.rate_cache_shared_hits, 0);
          }
        }
      }
    }
  }
  // Fifo and fair write different canonical reports (the schedule and the
  // wait histogram are part of the contract), but the same manifests.
  EXPECT_NE(reference_report["fifo"], reference_report["fair"]);
}

/// Resident mode must actually reuse warm engines and serve rate lookups
/// from the frozen shared table once the batch spans multiple rounds.
TEST_F(SvcDir, ResidentModeReusesEnginesAndSharesRates) {
  const auto specs = svc::make_job_mix(11, tiny_mix(4));
  BatchOptions opts;
  opts.batch_seed = 11;
  opts.threads = 1;
  opts.max_in_flight = 1;  // 4 rounds: rounds 2..4 read the frozen table
  opts.resident = true;
  opts.archive_dir = path("a");
  const BatchReport warm = BatchSupervisor(opts).run(specs);
  EXPECT_EQ(warm.completed, 4);
  EXPECT_GT(warm.engine_reuses, 0);
  EXPECT_GT(warm.rate_cache_shared_hits, 0);

  // And the counters stay out of the canonical report: a cold run matches.
  opts.resident = false;
  opts.archive_dir = path("b");
  const BatchReport cold = BatchSupervisor(opts).run(specs);
  EXPECT_EQ(cold.engine_reuses, 0);
  EXPECT_EQ(warm.canonical_json().str(), cold.canonical_json().str());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(warm.results[i].checksum, cold.results[i].checksum);
  }
}

/// The fair schedule reorders dispatch (shortest expected work first,
/// round-robin across datasets) without changing any outcome, and its
/// report is deterministic across thread counts.
TEST_F(SvcDir, FairScheduleReordersDispatchWithoutChangingOutcomes) {
  // Two datasets with very different mesh sizes in one batch, so the
  // work-proxy sort and the dataset interleave both engage.
  auto specs = svc::make_job_mix(3, tiny_mix(4));
  auto la = svc::make_job_mix(3, [] {
    JobMixOptions mix;
    mix.scenarios = 2;
    mix.dataset = "LA";
    mix.hours_min = 1;
    mix.hours_max = 1;
    return mix;
  }());
  for (ScenarioSpec& s : la) {
    s.id += 4;
    s.name = "la-" + std::to_string(s.id);
    specs.push_back(s);
  }

  BatchOptions opts;
  opts.batch_seed = 3;
  opts.threads = 2;
  opts.max_in_flight = 2;  // the cap makes the order observable
  opts.schedule = svc::Schedule::Fair;
  opts.archive_dir = path("fair");
  const BatchReport fair = BatchSupervisor(opts).run(specs);

  opts.schedule = svc::Schedule::Fifo;
  opts.archive_dir = path("fifo");
  const BatchReport fifo = BatchSupervisor(opts).run(specs);

  ASSERT_EQ(fair.results.size(), fifo.results.size());
  for (std::size_t i = 0; i < fair.results.size(); ++i) {
    EXPECT_EQ(fair.results[i].status, fifo.results[i].status) << i;
    EXPECT_EQ(fair.results[i].checksum, fifo.results[i].checksum) << i;
  }
  // TEST scenarios are far cheaper than LA, so under the fair schedule at
  // least one TEST attempt must land in round 0 before every LA attempt.
  int first_la_round = 1 << 20, first_test_round = 1 << 20;
  for (const svc::ScenarioResult& r : fair.results) {
    const int round = r.attempts.empty() ? 1 << 20 : r.attempts.front().round;
    if (r.spec.dataset == "LA") first_la_round = std::min(first_la_round, round);
    if (r.spec.dataset == "TEST") {
      first_test_round = std::min(first_test_round, round);
    }
  }
  EXPECT_LE(first_test_round, first_la_round);

  // Thread-count determinism of the fair report, histogram included.
  opts.schedule = svc::Schedule::Fair;
  opts.threads = 8;
  opts.archive_dir = path("fair8");
  const BatchReport fair8 = BatchSupervisor(opts).run(specs);
  EXPECT_EQ(fair.canonical_json().str(), fair8.canonical_json().str());
}

/// Scenarios sharing a base digest get the SAME immutable DatasetBase
/// instance, and running the model never mutates it.
TEST_F(SvcDir, SharedInputCacheHandsOutOneImmutableBase) {
  svc::SharedInputCache cache;
  const auto specs = svc::make_job_mix(17, tiny_mix(3));
  const Dataset a = svc::build_scenario_dataset(specs[0], false, &cache);
  const Dataset b = svc::build_scenario_dataset(specs[1], false, &cache);
  const Dataset poisoned = svc::build_scenario_dataset(specs[2], true, &cache);
  EXPECT_EQ(a.base, b.base);         // identity, not just equality
  EXPECT_EQ(a.base, poisoned.base);  // poison lives in the overlay
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 2);

  const std::uint64_t before = mesh_bytes_digest(a.mesh());
  ModelOptions mo;
  mo.hours = specs[0].hours;
  mo.host_threads = 1;
  (void)AirshedModel(a, mo).run();
  EXPECT_EQ(mesh_bytes_digest(b.mesh()), before);
  EXPECT_EQ(mesh_bytes_digest(a.mesh()), before);
}

/// The journal header pins the throughput configuration: a resume under a
/// different schedule / sharing / residency refuses to run.
TEST_F(SvcDir, ResumeRefusesMismatchedThroughputConfig) {
  const auto specs = svc::make_job_mix(21, tiny_mix(2));
  BatchOptions opts = journaled_opts(21, path("a"));
  opts.resident = true;
  opts.schedule = svc::Schedule::Fair;
  fs::create_directories(path("a"));
  {
    // Crashed batch: header + one start record, never sealed.
    svc::BatchJournal j(opts.journal_path, opts, specs);
    j.start(0, 0, 0, false);
  }

  for (const auto& mutate : std::vector<std::function<void(BatchOptions&)>>{
           [](BatchOptions& o) { o.share_inputs = false; },
           [](BatchOptions& o) { o.resident = false; },
           [](BatchOptions& o) { o.schedule = svc::Schedule::Fifo; }}) {
    BatchOptions bad = opts;
    bad.resume = true;
    mutate(bad);
    EXPECT_THROW(BatchSupervisor(bad).run(specs), ConfigError);
  }

  // The matching configuration resumes cleanly.
  BatchOptions good = opts;
  good.resume = true;
  const BatchReport done = BatchSupervisor(good).run(specs);
  EXPECT_TRUE(done.resumed);
  EXPECT_EQ(done.completed, 2);
}

/// SIGKILL drill with the full throughput engine on: sharing + residency +
/// fair schedule, killed at every journal record boundary, resumes to a
/// byte-identical archive.
TEST_F(SvcDir, SigkillResumeWithThroughputEngineIsByteIdentical) {
  const auto specs = svc::make_job_mix(7, tiny_mix(3));
  const auto engine_opts = [&](const std::string& dir) {
    BatchOptions opts = journaled_opts(7, dir);
    opts.chaos = full_chaos();
    opts.share_inputs = true;
    opts.resident = true;
    opts.schedule = svc::Schedule::Fair;
    return opts;
  };

  const std::string ref_dir = path("ref");
  BatchOptions ref = engine_opts(ref_dir);
  const BatchReport ref_report = BatchSupervisor(ref).run(specs);
  EXPECT_GT(ref_report.retries, 0);
  const auto ref_files = archive_bytes(ref_dir);
  const std::uint64_t frames =
      svc::BatchJournal::replay(ref_dir + "/batch.journal").raw.records.size();
  ASSERT_GT(frames, 3u);

  int point = 0;
  for (std::uint64_t k = 0; k < frames; ++k) {
    const std::string dir = path("crash_" + std::to_string(point));
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      fault::arm_kill_point(k, durable::JournalKillAction::KillAfter);
      BatchOptions opts = engine_opts(dir);
      try {
        BatchSupervisor(opts).run(specs);
      } catch (...) {
        _exit(3);
      }
      _exit(0);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << "kill point " << k << " did not fire";

    BatchOptions opts = engine_opts(dir);
    opts.threads = point % 2 == 0 ? 2 : 8;
    opts.resume = svc::BatchJournal::replay(dir + "/batch.journal").existed;
    const BatchReport report = BatchSupervisor(opts).run(specs);
    EXPECT_EQ(report.resumed, opts.resume);
    EXPECT_EQ(archive_bytes(dir), ref_files) << "kill point " << k;
    fs::remove_all(dir);
    ++point;
  }
}

}  // namespace
}  // namespace airshed
