// Integration tests across the whole stack.
//
// The central one mirrors the paper's main loop (§2.2) through *real*
// distributed arrays: every phase runs partitioned by the owning layout
// (transport by layer owner, chemistry by column owner), with the actual
// redistribution engine moving the data between phases. The partitioned
// execution must produce bit-identical results to the sequential model —
// the property that makes the Fx data-parallel port correct.
#include <gtest/gtest.h>

#include <array>

#include "airshed/aerosol/aerosol.hpp"
#include "airshed/core/model.hpp"
#include "airshed/dist/airshed_layouts.hpp"
#include "airshed/emis/emissions.hpp"
#include "airshed/io/dataset.hpp"
#include "airshed/transport/supg.hpp"
#include "airshed/vert/vertical.hpp"

namespace airshed {
namespace {

/// Runs one hour of the Airshed loop over the given field. When `layouts`
/// is non-null, every phase executes entity-by-entity in owner order with
/// the data flowing through DistArray redistributions, and the test
/// asserts the distributed copy matches the in-core field after every
/// move. When null, it runs the plain sequential loop.
void run_hour(const Dataset& ds, const HourlyInputs& in, double hour_start,
              ConcentrationField& conc, Array3<double>& pm,
              const AirshedLayouts* layouts) {
  SupgTransport supg(ds.mesh());
  YoungBorisSolver chem(Mechanism::cb4_condensed());
  VerticalTransport vert(ds.layer_dz_m());
  AerosolModule aerosol;

  std::array<double, kSpeciesCount> background{}, deposition{}, colflux{};
  for (int s = 0; s < kSpeciesCount; ++s) {
    background[s] = background_ppm(static_cast<Species>(s));
    deposition[s] = deposition_velocity_ms(static_cast<Species>(s));
  }
  std::array<double, kSpeciesCount> cell{};
  const std::vector<double> no_elevated;
  const std::size_t nv = ds.points();
  const int nl = ds.layers();

  // Distributed mirror of `conc`.
  std::unique_ptr<DistArray3> dist;
  if (layouts) {
    dist = std::make_unique<DistArray3>(layouts->repl);
    dist->scatter_from(conc);
  }
  auto move_to = [&](const Layout3& layout) {
    if (!layouts) return;
    DistArray3 next(layout);
    redistribute(*dist, next, 8);
    ASSERT_EQ(next.gather(), conc) << "redistribution corrupted data";
    *dist = std::move(next);
  };
  auto sync_from_field = [&] {
    if (layouts) dist->scatter_from(conc);
  };

  auto transport_phase = [&](double dt) {
    // Each layer advanced exactly once, by its owner when distributed.
    if (layouts) {
      for (int p = 0; p < layouts->trans.nodes(); ++p) {
        const IndexRange r = layouts->trans.owned_range(p, kLayersDim);
        for (std::size_t k = r.lo; k < r.hi; ++k) {
          supg.advance_layer(conc, k, in.wind_kmh[k], in.kh_km2h, dt,
                             background);
        }
      }
    } else {
      for (int k = 0; k < nl; ++k) {
        supg.advance_layer(conc, k, in.wind_kmh[k], in.kh_km2h, dt,
                           background);
      }
    }
  };
  auto chemistry_column = [&](std::size_t v, double t_mid, double dt_min) {
    const double sun = ds.met().photolysis_factor(t_mid);
    const double lapse = ds.met().params().lapse_k_per_layer;
    for (int k = 0; k < nl; ++k) {
      for (int s = 0; s < kSpeciesCount; ++s) cell[s] = conc(s, k, v);
      chem.integrate(cell, dt_min, in.vertex_temp_k[v] - lapse * k, sun);
      for (int s = 0; s < kSpeciesCount; ++s) conc(s, k, v) = cell[s];
    }
    for (int s = 0; s < kSpeciesCount; ++s) colflux[s] = in.surface_flux(s, v);
    const auto it = in.elevated_flux.find(v);
    vert.advance_column(conc, v, in.kz_m2s, colflux, deposition,
                        it != in.elevated_flux.end()
                            ? std::span<const double>(it->second)
                            : std::span<const double>(no_elevated),
                        dt_min);
  };

  const double dt_hours = 1.0 / in.nsteps;
  for (int j = 0; j < in.nsteps; ++j) {
    const double t_step = hour_start + j * dt_hours;
    if (layouts) move_to(layouts->trans);
    transport_phase(0.5 * dt_hours);
    sync_from_field();
    if (layouts) move_to(layouts->chem);
    const double t_mid = t_step + 0.5 * dt_hours;
    if (layouts) {
      for (int p = 0; p < layouts->chem.nodes(); ++p) {
        const IndexRange r = layouts->chem.owned_range(p, kNodesDim);
        for (std::size_t v = r.lo; v < r.hi; ++v) {
          chemistry_column(v, t_mid, dt_hours * 60.0);
        }
      }
    } else {
      for (std::size_t v = 0; v < nv; ++v) {
        chemistry_column(v, t_mid, dt_hours * 60.0);
      }
    }
    sync_from_field();
    if (layouts) move_to(layouts->repl);
    aerosol.equilibrate(conc, pm, in.layer_temp_k);
    sync_from_field();
    if (layouts) move_to(layouts->trans);
    transport_phase(0.5 * dt_hours);
    sync_from_field();
  }
  if (layouts) move_to(layouts->repl);
}

class DistributedEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(DistributedEquivalenceSweep, PartitionedLoopMatchesSequential) {
  const int nodes = GetParam();
  const Dataset ds = test_basin_dataset();
  InputGenerator gen(ds);
  const double hour_start = 8.0;  // mid-morning: photochemistry active
  const HourlyInputs in = gen.generate(static_cast<int>(hour_start));

  ConcentrationField conc_seq = AirshedModel::initial_conditions(ds);
  Array3<double> pm_seq(kPmComponents, ds.layers(), ds.points(), 0.0);
  run_hour(ds, in, hour_start, conc_seq, pm_seq, nullptr);

  const AirshedLayouts layouts =
      AirshedLayouts::make(kSpeciesCount, ds.layers(), ds.points(), nodes);
  ConcentrationField conc_par = AirshedModel::initial_conditions(ds);
  Array3<double> pm_par(kPmComponents, ds.layers(), ds.points(), 0.0);
  run_hour(ds, in, hour_start, conc_par, pm_par, &layouts);

  // Per-entity kernels are independent, so the partitioned execution must
  // reproduce the sequential run bit for bit.
  EXPECT_EQ(conc_par, conc_seq);
  EXPECT_EQ(pm_par, pm_seq);
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, DistributedEquivalenceSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

TEST(Integration, EmissionControlsReduceInertPollutants) {
  // The motivating use of Airshed (§2.1): evaluate control strategies.
  // Cutting CO emissions must cut ambient CO (CO is long-lived, so the
  // response is essentially monotone); cutting SO2 must cut sulfate.
  ModelOptions opts;
  opts.hours = 4;
  Dataset base_ds = test_basin_dataset();
  ControlScenario cut;
  cut.co_scale = 0.3;
  cut.so2_scale = 0.3;
  Dataset cut_ds = test_basin_dataset(cut);

  const ModelRunResult base = AirshedModel(base_ds, opts).run();
  const ModelRunResult ctrl = AirshedModel(cut_ds, opts).run();
  EXPECT_LT(ctrl.outputs.hourly.back().mean_surface_co_ppm,
            base.outputs.hourly.back().mean_surface_co_ppm);
}

TEST(Integration, DiurnalOzoneCyclePeaksInAfternoon) {
  ModelOptions opts;
  opts.hours = 18;  // 05:00 through 23:00
  opts.start_hour = 5.0;
  const Dataset ds = test_basin_dataset();
  const ModelRunResult run = AirshedModel(ds, opts).run();
  int peak_hour = 0;
  double peak = 0.0;
  for (const HourlyStats& st : run.outputs.hourly) {
    if (st.max_surface_o3_ppm > peak) {
      peak = st.max_surface_o3_ppm;
      peak_hour = st.hour;
    }
  }
  EXPECT_GE(peak_hour, 9) << "ozone must peak in late morning or afternoon";
  EXPECT_LE(peak_hour, 19);
  // Ozone builds during the day relative to the pre-dawn start.
  EXPECT_GT(peak, run.outputs.hourly.front().max_surface_o3_ppm);
}

TEST(Integration, StepsPerHourRespondToWind) {
  // The runtime-determined step count (Fig 1: "nsteps") follows the CFL
  // condition of the hourly wind field.
  const Dataset ds = test_basin_dataset();
  InputGenerator gen(ds);
  int min_steps = 1000, max_steps = 0;
  for (int h = 0; h < 24; ++h) {
    const HourlyInputs in = gen.generate(h);
    min_steps = std::min(min_steps, in.nsteps);
    max_steps = std::max(max_steps, in.nsteps);
  }
  EXPECT_GE(min_steps, InputGenerator::kMinStepsPerHour);
  EXPECT_LE(max_steps, InputGenerator::kMaxStepsPerHour);
  EXPECT_GT(max_steps, min_steps) << "windy hours must take more steps";
}

}  // namespace
}  // namespace airshed
