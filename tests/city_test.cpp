// Tests for airshed::city — the seeded procedural scenario generator: the
// "city:" spec codec (round-trip, named errors), bit-exact determinism of
// the generation pipeline, per-layer salt isolation (perturbing one salt
// regenerates exactly one layer; road/diurnal salts preserve the shared
// dataset base), the golden small-city inventory snapshot, and the svc
// integration property: a generated-city batch produces byte-identical
// archives at 1, 2 and 8 threads and across a SIGKILL + journal resume.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "airshed/city/generator.hpp"
#include "airshed/city/options.hpp"
#include "airshed/durable/container.hpp"
#include "airshed/durable/journal.hpp"
#include "airshed/fault/killpoint.hpp"
#include "airshed/io/dataset.hpp"
#include "airshed/svc/input_cache.hpp"
#include "airshed/svc/journal.hpp"
#include "airshed/svc/scenario.hpp"
#include "airshed/svc/supervisor.hpp"
#include "airshed/util/error.hpp"
#include "airshed/util/hash.hpp"

namespace airshed {
namespace {

namespace fs = std::filesystem;
using city::CityModel;
using city::CityOptions;
using city::CitySummary;
using city::LandUse;

// ---------------------------------------------------------------- helpers

std::uint64_t doubles_digest(std::span<const double> v,
                             std::uint64_t h = kFnvOffset) {
  return fnv1a(v, h);
}

/// Bit-exact digest over every layer of a generated city.
std::uint64_t model_digest(const CityModel& m) {
  std::uint64_t h = kFnvOffset;
  for (LandUse u : m.landuse) h = fnv1a(static_cast<std::uint64_t>(u), h);
  for (const city::RoadSegment& r : m.roads) {
    h = fnv1a(static_cast<std::uint64_t>(r.x), h);
    h = fnv1a(static_cast<std::uint64_t>(r.y), h);
    h = fnv1a(static_cast<std::uint64_t>(r.horizontal), h);
    h = fnv1a(static_cast<std::uint64_t>(r.road_class), h);
    h = fnv1a(r.traffic, h);
  }
  h = doubles_digest(m.block_traffic, h);
  for (const CitySpec& c : m.cores) {
    h = fnv1a(c.center.x, h);
    h = fnv1a(c.center.y, h);
    h = fnv1a(c.radius_km, h);
    h = fnv1a(c.strength, h);
  }
  for (const PointSource& s : m.stacks) {
    h = fnv1a(s.location.x, h);
    h = fnv1a(s.location.y, h);
    h = fnv1a(static_cast<std::uint64_t>(s.layer), h);
    h = fnv1a(static_cast<std::uint64_t>(s.species), h);
    h = fnv1a(s.rate_ppm_m_min, h);
  }
  h = fnv1a(m.met.ambient_wind_kmh, h);
  h = fnv1a(m.met.eddy_wind_kmh, h);
  h = fnv1a(m.met.sea_breeze_fraction, h);
  h = fnv1a(m.met.t_mean_k, h);
  h = fnv1a(m.met.latitude_deg, h);
  h = fnv1a(static_cast<std::uint64_t>(m.met.day_of_year), h);
  return h;
}

/// Bit-exact digest over the lowered emission overlay.
std::uint64_t field_digest(const AreaSourceField& f) {
  std::uint64_t h = kFnvOffset;
  h = doubles_digest(f.nox, h);
  h = doubles_digest(f.voc, h);
  h = doubles_digest(f.co, h);
  h = doubles_digest(f.so2, h);
  h = doubles_digest(f.nh3, h);
  h = doubles_digest(f.traffic_frac, h);
  h = doubles_digest(f.vegetation, h);
  h = fnv1a(f.rush_am_hour, h);
  h = fnv1a(f.rush_pm_hour, h);
  h = fnv1a(f.rush_width_h, h);
  h = fnv1a(f.rush_amplitude, h);
  return h;
}

std::uint64_t mesh_digest(const TriMesh& mesh) {
  const std::span<const Point2> pts = mesh.points();
  return fnv1a_bytes(std::string_view(
      reinterpret_cast<const char*>(pts.data()), pts.size() * sizeof(Point2)));
}

/// A small, fast city for the unit tests.
CityOptions tiny_city() {
  CityOptions o;
  o.seed = 11;
  o.blocks_x = 16;
  o.blocks_y = 16;
  o.target_points = 90;
  o.max_level = 2;
  o.layers = 3;
  return o;
}

// --------------------------------------------------------------- the codec

TEST(CitySpecCodec, RoundTripsNonDefaultOptions) {
  CityOptions o;
  o.seed = 99;
  o.name = "GOTHAM";
  o.blocks_x = 32;
  o.block_km = 2.25;
  o.industrial_fraction = 0.3;
  o.highways = 3;
  o.traffic_demand = 1.7;
  o.max_cores = 2;
  o.target_points = 250;
  o.road_salt = 7;

  const std::string spec = city::format_city_spec(o);
  EXPECT_EQ(spec.rfind("city:", 0), 0u);
  const CityOptions back = city::parse_city_spec(spec);
  EXPECT_EQ(back, o);
  // The canonical form is a fixed point of the codec.
  EXPECT_EQ(city::format_city_spec(back), spec);
}

TEST(CitySpecCodec, DefaultsAndScheme) {
  EXPECT_TRUE(city::is_city_spec("city:"));
  EXPECT_TRUE(city::is_city_spec("city:seed=3"));
  EXPECT_FALSE(city::is_city_spec("LA"));
  EXPECT_FALSE(city::is_city_spec("metropolis"));

  // Empty body = the default city; the bare key=value list also parses.
  EXPECT_EQ(city::parse_city_spec("city:"), CityOptions{});
  EXPECT_EQ(city::parse_city_spec("seed=5").seed, 5u);
  EXPECT_EQ(CityOptions{}.resolved_name(), "CITY-s1");
  CityOptions named;
  named.name = "ISOCITY";
  EXPECT_EQ(named.resolved_name(), "ISOCITY");
}

TEST(CitySpecCodec, ErrorsNameTheOffendingKey) {
  try {
    city::parse_city_spec("city:seed=1,boroughs=5");
    FAIL() << "unknown key accepted";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("boroughs"), std::string::npos);
  }
  try {
    city::parse_city_spec("city:bx=tall");
    FAIL() << "malformed value accepted";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("bx"), std::string::npos);
  }
  EXPECT_THROW(city::parse_city_spec("city:bx=2"), ConfigError);   // range
  EXPECT_THROW(city::parse_city_spec("city:name=a b"), ConfigError);
  EXPECT_THROW(city::parse_city_spec("city:seed"), ConfigError);   // bare token
}

// ----------------------------------------------------------- determinism

TEST(CityGenerator, PureInOptions) {
  const CityOptions o = tiny_city();
  const CityModel a = city::generate_city(o);
  const CityModel b = city::generate_city(o);
  EXPECT_EQ(model_digest(a), model_digest(b));
  EXPECT_EQ(field_digest(*city::lower_emissions(a)),
            field_digest(*city::lower_emissions(b)));
  EXPECT_EQ(a.roads, b.roads);
}

TEST(CityGenerator, DatasetBaseBuildsByteIdentically) {
  const DatasetSpec spec = city::city_dataset_spec(tiny_city());
  const auto base_a = build_dataset_base(spec);
  const auto base_b = build_dataset_base(spec);
  EXPECT_EQ(mesh_digest(base_a->mesh), mesh_digest(base_b->mesh));
  EXPECT_EQ(base_a->mesh.vertex_count(), base_b->mesh.vertex_count());
}

TEST(CityGenerator, EveryLandUseClassPresentByDefault) {
  const CityModel m = city::generate_city(CityOptions{});
  const CitySummary s = city::summarize(m);
  EXPECT_GT(s.industrial_blocks, 0u);
  EXPECT_GT(s.commercial_blocks, 0u);
  EXPECT_GT(s.residential_blocks, 0u);
  EXPECT_GE(s.cores, 1u);
  EXPECT_EQ(s.stacks, 3u);
  EXPECT_GT(s.highway_segments, 0u);
  EXPECT_GT(s.arterial_segments, 0u);
  EXPECT_GT(s.nox_flux_rush, 0.0);
}

// -------------------------------------------------------- salt isolation

TEST(CitySalts, RoadSaltMovesOnlyTrafficAndKeepsTheBase) {
  CityOptions base = tiny_city();
  CityOptions salted = base;
  salted.road_salt = 1;

  const CityModel a = city::generate_city(base);
  const CityModel b = city::generate_city(salted);

  EXPECT_EQ(a.landuse, b.landuse);        // districts untouched
  EXPECT_NE(a.roads, b.roads);            // traffic realization moved
  EXPECT_EQ(model_digest(a) == model_digest(b), false);

  // Refinement cores, stacks and met are road-independent, so the two
  // variants resolve to the SAME dataset base (one cache entry, one mesh).
  const DatasetSpec spec_a = city::city_dataset_spec(base);
  const DatasetSpec spec_b = city::city_dataset_spec(salted);
  EXPECT_EQ(dataset_base_digest(spec_a), dataset_base_digest(spec_b));

  // Only the emission overlay differs.
  EXPECT_NE(field_digest(*spec_a.area_sources),
            field_digest(*spec_b.area_sources));
}

TEST(CitySalts, DiurnalSaltMovesOnlyTheRushProfile) {
  CityOptions base = tiny_city();
  CityOptions salted = base;
  salted.diurnal_salt = 1;

  const CityModel a = city::generate_city(base);
  const CityModel b = city::generate_city(salted);
  EXPECT_EQ(model_digest(a), model_digest(b));  // city layout untouched

  const auto fa = city::lower_emissions(a);
  const auto fb = city::lower_emissions(b);
  EXPECT_EQ(fa->nox, fb->nox);  // rasters untouched
  EXPECT_EQ(fa->traffic_frac, fb->traffic_frac);
  EXPECT_NE(fa->rush_am_hour, fb->rush_am_hour);  // profile moved

  EXPECT_EQ(dataset_base_digest(city::city_dataset_spec(base)),
            dataset_base_digest(city::city_dataset_spec(salted)));
}

TEST(CitySalts, DistrictSaltRebuildsTheCity) {
  CityOptions base = tiny_city();
  CityOptions salted = base;
  salted.district_salt = 1;

  const CityModel a = city::generate_city(base);
  const CityModel b = city::generate_city(salted);
  EXPECT_NE(a.landuse, b.landuse);
  // Districts move the refinement cores, so the base digest changes too.
  EXPECT_NE(dataset_base_digest(city::city_dataset_spec(base)),
            dataset_base_digest(city::city_dataset_spec(salted)));
  // Met is derived from the master seed only: shared even here.
  EXPECT_EQ(fnv1a(a.met.ambient_wind_kmh), fnv1a(b.met.ambient_wind_kmh));
  EXPECT_EQ(a.met.day_of_year, b.met.day_of_year);
}

// ------------------------------------------------------- golden snapshot

/// Golden digest of the tiny city's lowered inventory. This pins the whole
/// pipeline — district growth, traffic, speciation weights, diurnal jitter
/// — bit for bit; any intentional generator change must update the
/// constant (and bumps every cached city base in the wild, which is the
/// point of the check).
TEST(CityGolden, TinyCityInventorySnapshot) {
  const auto field = city::lower_emissions(city::generate_city(tiny_city()));
  EXPECT_EQ(hash_hex(field_digest(*field)), "80f1eabfc4d8e1d9");
}

// --------------------------------------------------------- svc dispatch

TEST(CityScenario, ScenarioDatasetSpecDispatchesCitySpecs) {
  svc::ScenarioSpec s;
  s.dataset = city::format_city_spec(tiny_city());
  s.controls.nox_scale = 0.5;
  s.emission_perturbation = 1.1;
  const DatasetSpec spec = svc::scenario_dataset_spec(s);
  EXPECT_EQ(spec.name, "CITY-s11");
  EXPECT_NE(spec.area_sources, nullptr);
  EXPECT_DOUBLE_EQ(spec.controls.nox_scale, 0.5 * 1.1);

  svc::ScenarioSpec bad;
  bad.dataset = "city:bx=nope";
  EXPECT_THROW(svc::scenario_dataset_spec(bad), ConfigError);
  bad.dataset = "METROPOLIS";
  EXPECT_THROW(svc::scenario_dataset_spec(bad), ConfigError);
}

TEST(CityScenario, SharedInputCacheSharesSaltedVariants) {
  svc::SharedInputCache cache;
  svc::ScenarioSpec a;
  a.dataset = city::format_city_spec(tiny_city());
  CityOptions salted = tiny_city();
  salted.road_salt = 3;
  svc::ScenarioSpec b;
  b.id = 1;
  b.dataset = city::format_city_spec(salted);

  const Dataset da = svc::build_scenario_dataset(a, false, &cache);
  const Dataset db = svc::build_scenario_dataset(b, false, &cache);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(da.base.get(), db.base.get());  // literally the same mesh
  // ... under different emission overlays.
  EXPECT_NE(field_digest(*da.emissions.area_sources()),
            field_digest(*db.emissions.area_sources()));
}

// ------------------------------------------------------- svc integration

class CityBatchDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("airshed_city_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

svc::JobMixOptions city_mix(int scenarios) {
  svc::JobMixOptions mix;
  mix.scenarios = scenarios;
  mix.dataset = city::format_city_spec([] {
    CityOptions o;
    o.seed = 11;
    o.blocks_x = 12;
    o.blocks_y = 12;
    o.target_points = 70;
    o.max_level = 2;
    o.layers = 3;
    return o;
  }());
  mix.hours_min = 1;
  mix.hours_max = 2;
  return mix;
}

std::map<std::string, std::string> archive_bytes(const std::string& dir) {
  std::map<std::string, std::string> out;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name == "batch.journal") continue;
    out[name] = durable::read_file_bytes(e.path().string());
  }
  return out;
}

/// A generated-city batch through the full throughput engine — shared
/// inputs, resident engines, fair-share scheduling — is byte-identical at
/// 1, 2 and 8 threads, and the whole batch shares ONE dataset base.
TEST_F(CityBatchDir, ByteIdenticalAcrossThreadsWithFullThroughputEngine) {
  const auto specs = svc::make_job_mix(21, city_mix(4));

  std::map<std::string, std::string> reference;
  for (int threads : {1, 2, 8}) {
    svc::BatchOptions opts;
    opts.batch_seed = 21;
    opts.threads = threads;
    opts.share_inputs = true;
    opts.resident = true;
    opts.schedule = svc::Schedule::Fair;
    opts.archive_dir = path("archive_t" + std::to_string(threads));

    const svc::BatchReport report = svc::BatchSupervisor(opts).run(specs);
    EXPECT_EQ(report.completed, 4);
    EXPECT_EQ(report.input_cache_misses, 1) << "threads " << threads;
    EXPECT_EQ(report.input_cache_hits, 3) << "threads " << threads;

    const auto files = archive_bytes(opts.archive_dir);
    EXPECT_FALSE(files.empty());
    if (reference.empty()) {
      reference = files;
    } else {
      EXPECT_EQ(files, reference) << "threads " << threads;
    }
  }
}

/// SIGKILL mid-batch, then journal-resume: the archive is byte-identical
/// to an uninterrupted run — the city spec string survives the journal
/// header round-trip and regenerates the identical dataset.
TEST_F(CityBatchDir, SigkillThenResumeIsByteIdentical) {
  const auto specs = svc::make_job_mix(21, city_mix(3));

  auto journaled = [&](const std::string& dir) {
    svc::BatchOptions opts;
    opts.batch_seed = 21;
    opts.threads = 1;
    opts.archive_dir = dir;
    opts.journal_path = dir + "/batch.journal";
    return opts;
  };

  const std::string ref_dir = path("ref");
  svc::BatchSupervisor(journaled(ref_dir)).run(specs);
  const auto ref_files = archive_bytes(ref_dir);
  const std::uint64_t frames =
      svc::BatchJournal::replay(ref_dir + "/batch.journal").raw.records.size();
  ASSERT_GT(frames, 2u);

  // Kill after an early and a late journal append (the exhaustive per-
  // boundary sweep lives in svc_test; this drills the city-spec round-trip).
  for (std::uint64_t k : {std::uint64_t{1}, frames - 2}) {
    const std::string dir = path("crash_" + std::to_string(k));
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      fault::arm_kill_point(k, durable::JournalKillAction::KillAfter);
      try {
        svc::BatchSupervisor(journaled(dir)).run(specs);
      } catch (...) {
        _exit(3);
      }
      _exit(0);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << "kill point " << k << " did not fire";

    svc::BatchOptions opts = journaled(dir);
    opts.threads = k % 2 == 0 ? 2 : 1;
    opts.resume = svc::BatchJournal::replay(dir + "/batch.journal").existed;
    const svc::BatchReport report = svc::BatchSupervisor(opts).run(specs);
    EXPECT_EQ(report.resumed, opts.resume);
    EXPECT_EQ(archive_bytes(dir), ref_files) << "kill point " << k;
  }
}

}  // namespace
}  // namespace airshed
