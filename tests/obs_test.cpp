// Tests for the airshed::obs observability layer: recorder lane mechanics,
// JSON writer escaping, metric semantics, Chrome trace-event export
// (golden), durable container round-trips, virtual-timeline determinism
// across host thread counts, and the bit-identity guarantee (instrumented
// runs produce byte-identical science).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "airshed/core/executor.hpp"
#include "airshed/core/model.hpp"
#include "airshed/core/report.hpp"
#include "airshed/fault/fault_plan.hpp"
#include "airshed/io/dataset.hpp"
#include "airshed/io/vault.hpp"
#include "airshed/obs/export.hpp"
#include "airshed/obs/json.hpp"
#include "airshed/obs/metrics.hpp"
#include "airshed/obs/trace.hpp"
#include "airshed/util/error.hpp"
#include "airshed/util/hash.hpp"
#include "airshed/util/rng.hpp"

namespace airshed {
namespace {

// ------------------------------------------------------------ JsonWriter

TEST(ObsJson, EscapesEverythingJsonRequires) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("s").value(std::string_view("a\"b\\c\nd\te\x01" "f"));
  json.key("nan").value(std::numeric_limits<double>::quiet_NaN());
  json.key("inf").value(std::numeric_limits<double>::infinity());
  json.key("i").value(-7);
  json.key("b").value(true);
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\"s\":\"a\\\"b\\\\c\\nd\\te\\u0001f\","
            "\"nan\":null,\"inf\":null,\"i\":-7,\"b\":true}");
}

TEST(ObsJson, CommasNestAndDoublesRoundTrip) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("a").begin_array().value(1).value(2.5).begin_object().end_object();
  json.end_array();
  json.key("tiny").value(0.1);
  json.end_object();
  // Shortest round-trip form: 0.1 stays "0.1", not the 17-digit expansion.
  EXPECT_EQ(json.str(), "{\"a\":[1,2.5,{}],\"tiny\":0.1}");
}

TEST(ObsJson, DoublesUseShortestRoundTripForm) {
  const auto rendered = [](double v) {
    obs::JsonWriter json;
    json.value(v);
    return json.str();
  };
  // Human-friendly decimals render as typed, not as their nearest-double
  // 17-digit expansion.
  EXPECT_EQ(rendered(0.15), "0.15");
  EXPECT_EQ(rendered(1e-5), "1e-05");
  EXPECT_EQ(rendered(2.0), "2");
  EXPECT_EQ(rendered(-123.456), "-123.456");
  // Integral values keep plain notation when it is no longer than the
  // exponential form ("10", not "1e+01"; "250000", not "2.5e+05") —
  // histogram bounds and virtual-time stamps stay grep-able.
  EXPECT_EQ(rendered(10.0), "10");
  EXPECT_EQ(rendered(250000.0), "250000");
  EXPECT_EQ(rendered(1e6), "1000000");
  EXPECT_EQ(rendered(-500000.0), "-500000");
  EXPECT_EQ(rendered(1e18), "1e+18");  // longer in fixed form: stays %g
  // And every rendering still parses back to the exact same double, even
  // for values that genuinely need all 17 digits.
  Rng rng(2026);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-1e9, 1e9) * std::pow(10.0, rng.uniform(-12.0, 12.0));
    const std::string s = rendered(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

// ---------------------------------------------------------- TraceRecorder

TEST(ObsRecorder, FullLaneDropsAndCountsInsteadOfGrowing) {
  obs::TraceRecorder rec(2, /*capacity_per_thread=*/2);
  obs::SpanEvent ev;
  ev.name = "x";
  for (int i = 0; i < 5; ++i) {
    ev.start_ns = static_cast<std::uint64_t>(i);
    ev.end_ns = ev.start_ns + 1;
    rec.record(0, ev);
  }
  rec.record(1, ev);
  EXPECT_EQ(rec.dropped(), 3u);

  obs::TraceSession s = rec.drain();
  EXPECT_EQ(s.host_threads, 2);
  EXPECT_EQ(s.dropped, 3u);
  ASSERT_EQ(s.host.size(), 3u);
  // Lanes drain in thread order, each in record order.
  EXPECT_EQ(s.host[0].thread, 0);
  EXPECT_EQ(s.host[0].start_ns, 0u);
  EXPECT_EQ(s.host[1].start_ns, 1u);
  EXPECT_EQ(s.host[2].thread, 1);

  // Drain resets the recorder for reuse.
  obs::TraceSession again = rec.drain();
  EXPECT_TRUE(again.host.empty());
  EXPECT_EQ(again.dropped, 0u);
}

TEST(ObsRecorder, SpanGuardRecordsTagsAndNullRecorderIsInert) {
  obs::TraceRecorder rec(1);
  {
    obs::ObsSpan guard(&rec, 0, "phase", PhaseCategory::Chemistry,
                       /*hour=*/4, /*node=*/2);
  }
  { obs::ObsSpan noop(nullptr, 0, "x", PhaseCategory::Transport); }
  obs::TraceSession s = rec.drain();
  ASSERT_EQ(s.host.size(), 1u);
  EXPECT_EQ(s.host[0].name, "phase");
  EXPECT_EQ(s.host[0].category, PhaseCategory::Chemistry);
  EXPECT_EQ(s.host[0].hour, 4);
  EXPECT_EQ(s.host[0].node, 2);
  EXPECT_GE(s.host[0].end_ns, s.host[0].start_ns);
}

// --------------------------------------------------------------- Metrics

TEST(ObsMetrics, HistogramUsesInclusiveUpperBounds) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("lat", {1.0, 2.0, 4.0}, "test");
  for (double v : {0.5, 1.0, 1.5, 2.0, 4.0, 5.0}) h.observe(v);
  ASSERT_EQ(h.bucket_counts().size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h.bucket_counts()[0], 2);       // 0.5, 1.0  (le 1)
  EXPECT_EQ(h.bucket_counts()[1], 2);       // 1.5, 2.0  (le 2)
  EXPECT_EQ(h.bucket_counts()[2], 1);       // 4.0       (le 4)
  EXPECT_EQ(h.bucket_counts()[3], 1);       // 5.0       (overflow)
  EXPECT_EQ(h.count(), 6);
  EXPECT_DOUBLE_EQ(h.sum(), 14.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
}

TEST(ObsMetrics, HistogramRejectsInvalidBounds) {
  obs::MetricsRegistry registry;
  EXPECT_THROW(registry.histogram("a", {}, ""), Error);
  EXPECT_THROW(registry.histogram("b", {2.0, 1.0}, ""), Error);
  EXPECT_THROW(registry.histogram("c", {1.0, 1.0}, ""), Error);
  EXPECT_THROW(
      registry.histogram("d", {1.0, std::numeric_limits<double>::infinity()},
                         ""),
      Error);
}

TEST(ObsMetrics, RegistryAccumulatesAndRejectsKindCollisions) {
  obs::MetricsRegistry registry;
  registry.counter("n", "count").inc();
  registry.counter("n", "count").inc(2);
  EXPECT_EQ(registry.counter("n", "count").value(), 3);
  registry.gauge("g", "").set(1.5);
  registry.gauge("g", "").set(2.5);
  EXPECT_DOUBLE_EQ(registry.gauge("g", "").value(), 2.5);
  EXPECT_THROW(registry.gauge("n", ""), Error);
  EXPECT_THROW(registry.counter("g", ""), Error);
}

TEST(ObsMetrics, SnapshotJsonCarriesSchemaRunAndEveryMetric) {
  obs::MetricsRegistry registry;
  registry.counter("events", "how many").inc(3);
  registry.gauge("level", "").set(0.5);
  registry.histogram("ms", {1.0, 10.0}, "").observe(4.0);
  const std::string body = obs::metrics_json(registry, "unit-test");
  EXPECT_NE(body.find("\"schema\":\"airshed-metrics-v1\""), std::string::npos);
  EXPECT_NE(body.find("\"run\":\"unit-test\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"events\""), std::string::npos);
  EXPECT_NE(body.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(body.find("\"type\":\"gauge\""), std::string::npos);
  EXPECT_NE(body.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(body.find("\"upper_bounds\":[1,10]"), std::string::npos);
  EXPECT_NE(body.find("\"counts\":[0,1,0]"), std::string::npos);
}

// -------------------------------------------------------- Chrome export

obs::TraceSession golden_session() {
  obs::TraceSession s;
  s.host_threads = 1;
  s.dropped = 2;
  obs::CompletedSpan host;
  host.name = "chem block";
  host.category = PhaseCategory::Chemistry;
  host.thread = 0;
  host.hour = 3;
  host.start_ns = 1000;
  host.end_ns = 3500;
  s.host.push_back(host);
  s.virt.push_back(obs::VirtualSpan{"transport", PhaseCategory::Transport,
                                    /*node=*/-1, /*hour=*/0, 0.25, 0.5});
  s.virt.push_back(obs::VirtualSpan{"chemistry", PhaseCategory::Chemistry,
                                    /*node=*/1, /*hour=*/0, 1.0, 0.125});
  return s;
}

TEST(ObsExport, ChromeTraceGolden) {
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\","
      "\"otherData\":{\"dropped_spans\":2},"
      "\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"host\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"host thread 0\"}},"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
      "\"args\":{\"name\":\"fxsim virtual machine\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
      "\"args\":{\"name\":\"barrier (all nodes)\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":2,"
      "\"args\":{\"name\":\"node 1\"}},"
      "{\"name\":\"chem block\",\"cat\":\"chemistry\",\"ph\":\"X\","
      "\"pid\":1,\"tid\":0,\"ts\":1,\"dur\":2.5,\"args\":{\"hour\":3}},"
      "{\"name\":\"transport\",\"cat\":\"transport\",\"ph\":\"X\","
      "\"pid\":2,\"tid\":0,\"ts\":250000,\"dur\":500000,"
      "\"args\":{\"hour\":0}},"
      "{\"name\":\"chemistry\",\"cat\":\"chemistry\",\"ph\":\"X\","
      "\"pid\":2,\"tid\":2,\"ts\":1000000,\"dur\":125000,"
      "\"args\":{\"hour\":0,\"node\":1}}"
      "]}";
  EXPECT_EQ(obs::chrome_trace_json(golden_session()), expected);
}

TEST(ObsExport, EmptySessionIsStillValidJson) {
  const std::string body = obs::chrome_trace_json(obs::TraceSession{});
  EXPECT_EQ(body,
            "{\"displayTimeUnit\":\"ms\","
            "\"otherData\":{\"dropped_spans\":0},\"traceEvents\":[]}");
}

// ------------------------------------------------------ durable container

TEST(ObsExport, ContainerRoundTripsEveryField) {
  const std::string path =
      testing::TempDir() + "/obs_roundtrip_trace.obs";
  const obs::TraceSession in = golden_session();
  obs::save_trace_container(path, in);

  const obs::TraceSession out = obs::load_trace_container(path);
  EXPECT_EQ(out.host_threads, in.host_threads);
  EXPECT_EQ(out.dropped, in.dropped);
  ASSERT_EQ(out.host.size(), in.host.size());
  EXPECT_EQ(out.host[0].name, in.host[0].name);
  EXPECT_EQ(out.host[0].category, in.host[0].category);
  EXPECT_EQ(out.host[0].thread, in.host[0].thread);
  EXPECT_EQ(out.host[0].hour, in.host[0].hour);
  EXPECT_EQ(out.host[0].node, in.host[0].node);
  EXPECT_EQ(out.host[0].start_ns, in.host[0].start_ns);
  EXPECT_EQ(out.host[0].end_ns, in.host[0].end_ns);
  ASSERT_EQ(out.virt.size(), in.virt.size());
  for (std::size_t i = 0; i < in.virt.size(); ++i) {
    EXPECT_EQ(out.virt[i].name, in.virt[i].name);
    EXPECT_EQ(out.virt[i].category, in.virt[i].category);
    EXPECT_EQ(out.virt[i].node, in.virt[i].node);
    EXPECT_EQ(out.virt[i].hour, in.virt[i].hour);
    EXPECT_EQ(out.virt[i].start_s, in.virt[i].start_s);
    EXPECT_EQ(out.virt[i].dur_s, in.virt[i].dur_s);
  }
  std::remove(path.c_str());
}

TEST(ObsExport, ContainerDetectsCorruption) {
  const std::string path = testing::TempDir() + "/obs_corrupt_trace.obs";
  obs::save_trace_container(path, golden_session());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(80);
    char c;
    f.seekg(80);
    f.get(c);
    f.seekp(80);
    f.put(static_cast<char>(c ^ 0x40));
  }
  EXPECT_THROW(obs::load_trace_container(path), durable::StorageError);
  std::remove(path.c_str());
}

// --------------------------------------------- model + executor threading

ModelRunResult run_test_model(int host_threads, obs::TraceRecorder* rec) {
  ModelOptions opts;
  opts.hours = 2;
  opts.host_threads = host_threads;
  opts.oversubscribe = true;  // keep real multi-thread coverage on small hosts
  opts.trace = rec;
  return AirshedModel(test_basin_dataset(), opts).run();
}

std::uint64_t outputs_checksum(const ModelRunResult& r) {
  std::uint64_t h = fnv1a(r.outputs.conc.flat());
  return fnv1a(std::span<const double>(r.outputs.pm.flat()), h);
}

TEST(ObsIntegration, InstrumentedRunIsBitIdentical) {
  const std::uint64_t bare = outputs_checksum(run_test_model(2, nullptr));
  obs::TraceRecorder rec(2);
  const std::uint64_t traced = outputs_checksum(run_test_model(2, &rec));
  EXPECT_EQ(bare, traced);

  const obs::TraceSession s = rec.drain();
  EXPECT_EQ(s.dropped, 0u);
  ASSERT_FALSE(s.host.empty());
  // Every model phase family shows up, tagged with a valid hour and a
  // thread index inside the pool.
  bool saw_input = false, saw_layer = false, saw_chem = false,
       saw_aerosol = false;
  for (const obs::CompletedSpan& sp : s.host) {
    EXPECT_GE(sp.end_ns, sp.start_ns);
    EXPECT_GE(sp.thread, 0);
    EXPECT_LT(sp.thread, 2);
    EXPECT_GE(sp.hour, -1);
    EXPECT_LT(sp.hour, 2);
    saw_input |= sp.name == "inputhour";
    saw_layer |= sp.name == "transport layer";
    saw_chem |= sp.name == "chem block" || sp.name == "chemistry Lcz";
    saw_aerosol |= sp.name == "aerosol";
  }
  EXPECT_TRUE(saw_input);
  EXPECT_TRUE(saw_layer);
  EXPECT_TRUE(saw_chem);
  EXPECT_TRUE(saw_aerosol);
}

TEST(ObsIntegration, HostSpanSequenceIsDeterministicAcrossRuns) {
  using Key = std::tuple<int, std::string, int, int>;
  auto sequence = [](obs::TraceSession s) {
    std::vector<Key> keys;
    keys.reserve(s.host.size());
    for (const obs::CompletedSpan& sp : s.host) {
      keys.emplace_back(sp.thread, sp.name, static_cast<int>(sp.category),
                        sp.hour);
    }
    return keys;
  };
  obs::TraceRecorder a(2), b(2);
  run_test_model(2, &a);
  run_test_model(2, &b);
  EXPECT_EQ(sequence(a.drain()), sequence(b.drain()));
}

const WorkTrace& shared_trace() {
  static const WorkTrace trace = run_test_model(0, nullptr).trace;
  return trace;
}

std::vector<obs::VirtualSpan> timeline_for(const ExecutionConfig& base,
                                           int host_threads) {
  obs::VirtualTimeline tl;
  ExecutionConfig cfg = base;
  cfg.host_threads = host_threads;
  cfg.timeline = &tl;
  simulate_execution(shared_trace(), cfg);
  return tl.take();
}

void expect_identical_timelines(const std::vector<obs::VirtualSpan>& a,
                                const std::vector<obs::VirtualSpan>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name) << "span " << i;
    EXPECT_EQ(a[i].category, b[i].category) << "span " << i;
    EXPECT_EQ(a[i].node, b[i].node) << "span " << i;
    EXPECT_EQ(a[i].hour, b[i].hour) << "span " << i;
    // Bit-equality, not tolerance: the timeline must be byte-stable.
    EXPECT_EQ(a[i].start_s, b[i].start_s) << "span " << i;
    EXPECT_EQ(a[i].dur_s, b[i].dur_s) << "span " << i;
  }
}

TEST(ObsIntegration, VirtualTimelineBitIdenticalAcrossHostThreads) {
  ExecutionConfig cfg;
  cfg.machine = intel_paragon();
  cfg.nodes = 8;
  const std::vector<obs::VirtualSpan> base = timeline_for(cfg, 1);
  ASSERT_FALSE(base.empty());
  expect_identical_timelines(base, timeline_for(cfg, 4));

  bool any_barrier = false, any_node = false;
  for (const obs::VirtualSpan& s : base) {
    any_barrier |= s.node < 0;
    any_node |= s.node >= 0;
    EXPECT_GE(s.dur_s, 0.0);
    EXPECT_GE(s.start_s, 0.0);
  }
  EXPECT_TRUE(any_barrier);
  EXPECT_TRUE(any_node);  // per_node defaults to true
}

TEST(ObsIntegration, FaultyTimelineDeterministicAndCarriesRecoverySpans) {
  FaultModelOptions fopts;
  fopts.node_mtbf_hours = 20.0;
  fopts.slowdown_probability = 0.2;
  FaultPlan plan;
  const int hours = static_cast<int>(shared_trace().hours.size());
  for (std::uint64_t seed = 1; seed < 200; ++seed) {
    plan = FaultPlan::make(seed, 8, hours, fopts);
    if (plan.has_failures()) break;
  }
  ASSERT_TRUE(plan.has_failures()) << "no failing seed in 200 draws";

  ExecutionConfig cfg;
  cfg.machine = intel_paragon();
  cfg.nodes = 8;
  cfg.faults = plan;
  cfg.checkpoint.interval_hours = 1;
  const std::vector<obs::VirtualSpan> base = timeline_for(cfg, 1);
  expect_identical_timelines(base, timeline_for(cfg, 4));

  bool any_recovery = false;
  for (const obs::VirtualSpan& s : base) {
    any_recovery |= s.category == PhaseCategory::Recovery;
  }
  EXPECT_TRUE(any_recovery);
}

TEST(ObsIntegration, TimelineDoesNotChangeTheReport) {
  ExecutionConfig cfg;
  cfg.machine = intel_paragon();
  cfg.nodes = 8;
  cfg.host_threads = 1;
  const RunReport bare = simulate_execution(shared_trace(), cfg);
  obs::VirtualTimeline tl;
  cfg.timeline = &tl;
  const RunReport traced = simulate_execution(shared_trace(), cfg);
  EXPECT_EQ(bare.total_seconds, traced.total_seconds);
  EXPECT_EQ(bare.comm.phases, traced.comm.phases);
}

TEST(ObsIntegration, VaultOperationsRecordRecoverySpans) {
  ModelOptions opts;
  opts.hours = 1;
  opts.host_threads = 1;
  CheckpointRecord last;
  AirshedModel(test_basin_dataset(), opts)
      .run_with_checkpoints(
          [&](const CheckpointRecord& rec) { last = rec; });

  const std::string dir = testing::TempDir() + "/obs_vault_test";
  CheckpointVault vault(dir, "test");
  obs::TraceRecorder rec(1);
  vault.set_observer(&rec);
  vault.append(last);
  vault.restore_newest_valid();

  const obs::TraceSession s = rec.drain();
  ASSERT_EQ(s.host.size(), 2u);
  EXPECT_EQ(s.host[0].name, "vault append");
  EXPECT_EQ(s.host[0].category, PhaseCategory::Recovery);
  EXPECT_EQ(s.host[1].name, "vault verify+restore");
}

TEST(ObsIntegration, RecordMetricsFlattensAReport) {
  ExecutionConfig cfg;
  cfg.machine = intel_paragon();
  cfg.nodes = 8;
  cfg.host_threads = 1;
  const RunReport report = simulate_execution(shared_trace(), cfg);
  obs::MetricsRegistry registry;
  record_metrics(registry, report);
  EXPECT_DOUBLE_EQ(registry.gauge("sim/total_seconds", "").value(),
                   report.total_seconds);
  EXPECT_DOUBLE_EQ(
      registry.gauge("phase/chemistry/seconds", "").value(),
      report.ledger.category_seconds(PhaseCategory::Chemistry));
  // Fault-free report: no recovery/* metrics (the phase/recovery/* gauges
  // from the category sweep are always present; the recovery/ namespace
  // only appears when the report carries recovery events).
  const std::string body = obs::metrics_json(registry, "r");
  EXPECT_EQ(body.find("\"name\":\"recovery/"), std::string::npos);
}

}  // namespace
}  // namespace airshed
