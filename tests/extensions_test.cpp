// Tests for the extension features beyond the paper's §2-§6 baseline:
// CYCLIC distributions, the Fig 11 foreign-module scenarios B and C, the
// §4.3 extrapolation model, and the task-mapping optimizer.
#include <gtest/gtest.h>

#include <tuple>

#include "airshed/core/executor.hpp"
#include "airshed/core/model.hpp"
#include "airshed/dist/airshed_layouts.hpp"
#include "airshed/fxsim/foreign.hpp"
#include "airshed/io/dataset.hpp"
#include "airshed/perf/model.hpp"
#include "airshed/popexp/popexp.hpp"
#include "airshed/util/rng.hpp"
#include "airshed/util/stats.hpp"

namespace airshed {
namespace {

constexpr std::size_t kS = 7, kL = 5, kN = 23;

Array3<double> random_field(std::uint64_t seed) {
  Array3<double> a(kS, kL, kN);
  Rng rng(seed);
  for (double& x : a.flat()) x = rng.uniform();
  return a;
}

// ------------------------------------------------------------------ cyclic

TEST(CyclicLayout, OwnershipIsModular) {
  const Layout3 l = Layout3::cyclic({kS, kL, kN}, 2, 4);
  EXPECT_TRUE(l.is_cyclic());
  EXPECT_EQ(l.distributed_dim(), 2);
  EXPECT_EQ(l.owner_of(0), 0);
  EXPECT_EQ(l.owner_of(5), 1);
  EXPECT_EQ(l.owner_of(22), 2);
  EXPECT_TRUE(l.owns(1, 0, 0, 5));
  EXPECT_FALSE(l.owns(0, 0, 0, 5));
  // 23 indices over 4 nodes cyclically: 6, 6, 6, 5.
  EXPECT_EQ(l.owned_count(0, 2), 6u);
  EXPECT_EQ(l.owned_count(3, 2), 5u);
  EXPECT_EQ(l.local_elements(0), kS * kL * 6);
}

TEST(CyclicLayout, OwnedRangeThrowsButCountsWork) {
  const Layout3 l = Layout3::cyclic({kS, kL, kN}, 2, 4);
  EXPECT_THROW((void)l.owned_range(0, 2), Error);
  std::size_t total = 0;
  for (int p = 0; p < 4; ++p) total += l.owned_count(p, 2);
  EXPECT_EQ(total, kN);
}

TEST(CyclicLayout, ActiveNodesSaturatesAtExtent) {
  EXPECT_EQ(Layout3::cyclic({kS, kL, kN}, 1, 8).active_nodes(), 5);
  EXPECT_EQ(Layout3::cyclic({kS, kL, kN}, 2, 8).active_nodes(), 8);
}

TEST(BlockLayout, ActiveNodesHandlesCeilGaps) {
  // 9 elements over 8 nodes: blocks of 2 -> only 5 owners.
  const Layout3 l = Layout3::block({kS, kL, 9}, 2, 8);
  EXPECT_EQ(l.active_nodes(), 5);
  EXPECT_EQ(l.local_elements(5), 0u);
}

class CyclicRoundTripSweep : public ::testing::TestWithParam<int> {};

TEST_P(CyclicRoundTripSweep, ScatterGatherAndRedistributions) {
  const int p = GetParam();
  const Array3<double> global = random_field(11);

  // Scatter/gather round trip through a cyclic layout.
  DistArray3 cyc(Layout3::cyclic({kS, kL, kN}, 2, p));
  cyc.scatter_from(global);
  EXPECT_EQ(cyc.gather(), global);

  // Full main-loop sequence with a cyclic chemistry layout.
  const std::array<std::size_t, 3> shape{kS, kL, kN};
  DistArray3 repl(Layout3::replicated(shape, p));
  DistArray3 trans(Layout3::block(shape, 1, p));
  DistArray3 chem(Layout3::cyclic(shape, 2, p));
  DistArray3 repl2(Layout3::replicated(shape, p));
  repl.scatter_from(global);
  redistribute(repl, trans, 8);
  EXPECT_EQ(trans.gather(), global);
  redistribute(trans, chem, 8);
  EXPECT_EQ(chem.gather(), global);
  redistribute(chem, repl2, 8);
  EXPECT_EQ(repl2.gather(), global);
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, CyclicRoundTripSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

TEST(CyclicRedistribution, SameByteVolumeAsBlock) {
  const std::array<std::size_t, 3> shape{35, 5, 700};
  const Layout3 trans = Layout3::block(shape, 1, 16);
  const RedistributionStats to_block =
      plan_redistribution(trans, Layout3::block(shape, 2, 16), 8);
  const RedistributionStats to_cyclic =
      plan_redistribution(trans, Layout3::cyclic(shape, 2, 16), 8);
  EXPECT_DOUBLE_EQ(to_block.total_network_bytes + to_block.total_copied_bytes,
                   to_cyclic.total_network_bytes +
                       to_cyclic.total_copied_bytes);
}

TEST(CyclicExecutor, BalancesHeterogeneousChemistry) {
  // Construct a trace with strongly clustered column costs: BLOCK suffers,
  // CYCLIC doesn't.
  WorkTrace t;
  t.dataset = "synthetic";
  t.species = 4;
  t.layers = 2;
  t.points = 64;
  HourTrace hour;
  hour.input_work = 1.0;
  hour.pretrans_work = 1.0;
  hour.output_work = 1.0;
  StepTrace step;
  step.transport1_layer_work = {1e6, 1e6};
  step.transport2_layer_work = {1e6, 1e6};
  step.aerosol_work = 1.0;
  step.chem_column_work.assign(64, 1e5);
  for (int v = 0; v < 16; ++v) step.chem_column_work[v] = 1e7;  // hot cluster
  hour.steps.push_back(step);
  t.hours.push_back(hour);

  ExecutionConfig block{cray_t3e(), 16};
  ExecutionConfig cyclic{cray_t3e(), 16};
  cyclic.chemistry_dist = DimDist::Cyclic;
  const double chem_block =
      simulate_execution(t, block).ledger.category_seconds(
          PhaseCategory::Chemistry);
  const double chem_cyclic =
      simulate_execution(t, cyclic).ledger.category_seconds(
          PhaseCategory::Chemistry);
  // BLOCK: 4 nodes get 4 hot columns each -> 4e7 max. CYCLIC: every node
  // gets exactly one hot column -> ~1e7.
  EXPECT_GT(chem_block, 3.5 * chem_cyclic);
}

// ------------------------------------------------------------ block-cyclic

TEST(BlockCyclicLayout, OwnershipFollowsBlockRoundRobin) {
  // 23 indices, blocks of 4, 3 nodes: blocks 0..5 dealt 0,1,2,0,1,2.
  const Layout3 l = Layout3::block_cyclic({kS, kL, kN}, 2, 3, 4);
  EXPECT_TRUE(l.is_cyclic());
  EXPECT_EQ(l.cycle_block(), 4u);
  EXPECT_EQ(l.owner_of(0), 0);
  EXPECT_EQ(l.owner_of(3), 0);
  EXPECT_EQ(l.owner_of(4), 1);
  EXPECT_EQ(l.owner_of(11), 2);
  EXPECT_EQ(l.owner_of(12), 0);
  EXPECT_EQ(l.owner_of(22), 2);  // final short block (20..22) -> block 5
  // Counts: node0 owns blocks 0,3 (8); node1 blocks 1,4 (8); node2 blocks
  // 2,5 (4 + 3 = 7).
  EXPECT_EQ(l.owned_count(0, 2), 8u);
  EXPECT_EQ(l.owned_count(1, 2), 8u);
  EXPECT_EQ(l.owned_count(2, 2), 7u);
}

class BlockCyclicRoundTripSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BlockCyclicRoundTripSweep, ScatterGatherAndRedistributions) {
  const auto [p, blk] = GetParam();
  const Array3<double> global = random_field(17);
  const std::array<std::size_t, 3> shape{kS, kL, kN};

  DistArray3 bc(Layout3::block_cyclic(shape, 2, p, blk));
  bc.scatter_from(global);
  EXPECT_EQ(bc.gather(), global);

  // Through the main-loop sequence with a block-cyclic chemistry layout.
  DistArray3 trans(Layout3::block(shape, 1, p));
  DistArray3 chem(Layout3::block_cyclic(shape, 2, p, blk));
  DistArray3 repl(Layout3::replicated(shape, p));
  trans.scatter_from(global);
  redistribute(trans, chem, 8);
  EXPECT_EQ(chem.gather(), global);
  redistribute(chem, repl, 8);
  EXPECT_EQ(repl.gather(), global);

  // Cyclic <-> block-cyclic cross-redistribution (mixed cyclic kinds).
  DistArray3 cyc(Layout3::cyclic(shape, 2, p));
  redistribute(chem, cyc, 8);
  EXPECT_EQ(cyc.gather(), global);
}

INSTANTIATE_TEST_SUITE_P(NodesAndBlocks, BlockCyclicRoundTripSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                                            ::testing::Values(1, 2, 4, 7)));

TEST(BlockCyclicLayout, PlanCountsMatchExplicitEnumeration) {
  const std::array<std::size_t, 3> shape{kS, kL, kN};
  const Layout3 from = Layout3::block_cyclic(shape, 2, 4, 3);
  const Layout3 to = Layout3::block(shape, 2, 4);
  const RedistributionStats st = plan_redistribution(from, to, 8);
  // Total moved bytes (network + local) must equal the full array.
  EXPECT_DOUBLE_EQ(st.total_network_bytes + st.total_copied_bytes,
                   static_cast<double>(kS * kL * kN * 8));
}

// -------------------------------------------------- foreign scenarios B, C

TEST(ForeignScenarios, AggressivenessOrdering) {
  const MachineModel m = intel_paragon();
  const std::size_t bytes = 35 * 700 * 8;
  ForeignCouplingOptions a, b, c;
  a.scenario = ForeignScenario::A;
  b.scenario = ForeignScenario::B;
  c.scenario = ForeignScenario::C;
  for (int src : {4, 14, 60}) {
    const double ta = foreign_transfer_seconds(m, bytes, src, 4, a);
    const double tb = foreign_transfer_seconds(m, bytes, src, 4, b);
    const double tc = foreign_transfer_seconds(m, bytes, src, 4, c);
    const double tn = native_transfer_seconds(m, bytes, src, 4);
    EXPECT_GT(ta, tb) << src;
    EXPECT_GT(tb, tc) << src;
    EXPECT_GT(tc, tn) << src;  // handshake overhead remains
  }
}

TEST(ForeignScenarios, CIsNativePlusHandshake) {
  const MachineModel m = cray_t3e();
  ForeignCouplingOptions c;
  c.scenario = ForeignScenario::C;
  const double tc = foreign_transfer_seconds(m, 1000, 3, 2, c);
  const double tn = native_transfer_seconds(m, 1000, 3, 2);
  EXPECT_NEAR(tc - tn, c.sync_overhead_s, 1e-12);
}

TEST(ForeignScenarios, Names) {
  EXPECT_NE(std::string(to_string(ForeignScenario::A)).find("staged"),
            std::string::npos);
  EXPECT_NE(std::string(to_string(ForeignScenario::B)).find("direct"),
            std::string::npos);
  EXPECT_NE(std::string(to_string(ForeignScenario::C)).find("variable"),
            std::string::npos);
}

// ------------------------------------------------------------ extrapolation

TEST(Extrapolation, RecoversSyntheticModelExactly) {
  // Generate observations from a known model; the fit must recover it.
  ExtrapolationModel truth;
  truth.constant_s = 30.0;
  truth.transport_seq_s = 200.0;
  truth.chem_seq_s = 1500.0;
  truth.layers = 5;
  std::vector<TotalObservation> obs;
  for (int p : {1, 2, 3, 4, 6, 8}) obs.push_back({p, truth.predict(p)});
  const ExtrapolationModel fit = fit_extrapolation(obs, 5);
  EXPECT_NEAR(fit.constant_s, truth.constant_s, 1e-6);
  EXPECT_NEAR(fit.transport_seq_s, truth.transport_seq_s, 1e-6);
  EXPECT_NEAR(fit.chem_seq_s, truth.chem_seq_s, 1e-6);
  for (int p : {16, 64, 128}) {
    EXPECT_NEAR(fit.predict(p), truth.predict(p), 1e-6);
  }
}

TEST(Extrapolation, PredictsSimulatedExecutionFromSmallP) {
  // The §4.3 workflow on a real trace: fit on P <= 8, predict P <= 64
  // within 10%.
  Dataset ds = test_basin_dataset();
  ModelOptions opts;
  opts.hours = 2;
  const WorkTrace trace = AirshedModel(ds, opts).run().trace;
  const MachineModel m = cray_t3e();
  std::vector<TotalObservation> obs;
  for (int p : {1, 2, 3, 4, 6, 8}) {
    obs.push_back({p, simulate_execution(trace, {m, p}).total_seconds});
  }
  const ExtrapolationModel fit = fit_extrapolation(obs, trace.layers);
  for (int p : {16, 32, 64}) {
    const double measured =
        simulate_execution(trace, {m, p}).total_seconds;
    EXPECT_LT(relative_error(fit.predict(p), measured), 0.10) << "P=" << p;
  }
}

TEST(Extrapolation, RejectsBadInputs) {
  std::vector<TotalObservation> two = {{1, 10.0}, {2, 6.0}};
  EXPECT_THROW(fit_extrapolation(two, 5), Error);
  std::vector<TotalObservation> bad = {{0, 1.0}, {1, 1.0}, {2, 1.0}};
  EXPECT_THROW(fit_extrapolation(bad, 5), Error);
  ExtrapolationModel m;
  m.layers = 5;
  EXPECT_THROW((void)m.predict(0), Error);
}

// ----------------------------------------------------- allocation optimizer

TEST(AllocationOptimizer, NeverWorseThanHeuristic) {
  Dataset ds = test_basin_dataset();
  ModelOptions opts;
  opts.hours = 3;
  const WorkTrace trace = AirshedModel(ds, opts).run().trace;
  for (int nodes : {8, 16, 34}) {
    PopExpExecutionConfig cfg;
    cfg.machine = intel_paragon();
    cfg.nodes = nodes;
    cfg.raster_cells = 256;
    const PopExpAllocationSearch s = optimize_popexp_allocation(trace, cfg);
    EXPECT_LE(s.best_makespan_s, s.heuristic_makespan_s * 1.0000001)
        << "nodes=" << nodes;
    EXPECT_EQ(s.best.input_nodes + s.best.main_nodes + s.best.output_nodes +
                  s.best.popexp_nodes,
              nodes);
    // The explicit-allocation overload reproduces the searched makespan.
    EXPECT_NEAR(simulate_airshed_popexp(trace, cfg, s.best).total_seconds,
                s.best_makespan_s, 1e-9);
  }
}

TEST(AllocationOptimizer, RejectsInvalidAllocations) {
  Dataset ds = test_basin_dataset();
  ModelOptions opts;
  opts.hours = 1;
  const WorkTrace trace = AirshedModel(ds, opts).run().trace;
  PopExpExecutionConfig cfg;
  cfg.machine = cray_t3e();
  cfg.nodes = 8;
  cfg.raster_cells = 64;
  PopExpAllocation bad;
  bad.input_nodes = 1;
  bad.main_nodes = 2;
  bad.output_nodes = 1;
  bad.popexp_nodes = 1;  // sums to 5, not 8
  EXPECT_THROW(simulate_airshed_popexp(trace, cfg, bad), Error);
}

}  // namespace
}  // namespace airshed
