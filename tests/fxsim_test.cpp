// Tests for the simulated Fx runtime: ledger accounting, the Eq. 2
// communication cost model, pipeline scheduling, and the foreign-module
// coupling costs.
#include <gtest/gtest.h>

#include "airshed/fxsim/comm_cost.hpp"
#include "airshed/fxsim/foreign.hpp"
#include "airshed/fxsim/ledger.hpp"
#include "airshed/fxsim/pipeline.hpp"
#include "airshed/machine/machine.hpp"
#include "airshed/util/error.hpp"
#include "airshed/util/rng.hpp"

namespace airshed {
namespace {

TEST(Ledger, ChargesAccumulatePerPhaseAndCategory) {
  RunLedger l;
  l.charge(PhaseCategory::Chemistry, "chem", 2.0);
  l.charge(PhaseCategory::Chemistry, "chem", 3.0);
  l.charge(PhaseCategory::Transport, "trans", 1.0);
  EXPECT_DOUBLE_EQ(l.total_seconds(), 6.0);
  EXPECT_DOUBLE_EQ(l.category_seconds(PhaseCategory::Chemistry), 5.0);
  EXPECT_DOUBLE_EQ(l.category_seconds(PhaseCategory::Transport), 1.0);
  EXPECT_EQ(l.category_count(PhaseCategory::Chemistry), 2);
  const auto phases = l.phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].name, "chem");  // sorted by descending time
}

TEST(Ledger, MergeCombines) {
  RunLedger a, b;
  a.charge(PhaseCategory::Chemistry, "chem", 1.0);
  b.charge(PhaseCategory::Chemistry, "chem", 2.0);
  b.charge(PhaseCategory::Communication, "comm", 0.5);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total_seconds(), 3.5);
  EXPECT_EQ(a.category_count(PhaseCategory::Chemistry), 2);
}

TEST(Ledger, RejectsNegativeCharge) {
  RunLedger l;
  EXPECT_THROW(l.charge(PhaseCategory::Chemistry, "x", -1.0), Error);
}

TEST(CommCost, MatchesEquationTwo) {
  MachineModel m = cray_t3e();
  NodeTraffic t;
  t.messages_sent = 10;
  t.messages_received = 5;
  t.bytes_sent = 1e6;
  t.bytes_received = 2e6;  // dominant direction
  t.bytes_copied = 5e5;
  const double expect = m.latency_per_message_s * 15.0 +
                        m.cost_per_byte_s * 2e6 + m.copy_per_byte_s * 5e5;
  EXPECT_DOUBLE_EQ(node_comm_time(m, t), expect);
}

TEST(CommCost, PhaseTimeIsMaxOverNodes) {
  MachineModel m = cray_t3e();
  std::vector<NodeTraffic> traffic(3);
  traffic[1].bytes_sent = 1e7;  // the bottleneck node
  EXPECT_DOUBLE_EQ(phase_comm_time(m, traffic),
                   node_comm_time(m, traffic[1]));
}

TEST(Pipeline, SingleStageIsSumOfItems) {
  EXPECT_DOUBLE_EQ(pipeline_makespan({{1.0, 2.0, 3.0}}), 6.0);
}

TEST(Pipeline, BalancedStagesApproachBottleneckRate) {
  // 3 stages x N items, all durations d: makespan = (N + S - 1) * d.
  const int n = 10;
  std::vector<std::vector<double>> st(3, std::vector<double>(n, 2.0));
  EXPECT_DOUBLE_EQ(pipeline_makespan(st), (n + 3 - 1) * 2.0);
}

TEST(Pipeline, BottleneckStageDominates) {
  // A slow middle stage serializes the pipeline.
  const int n = 8;
  std::vector<std::vector<double>> st = {
      std::vector<double>(n, 1.0),
      std::vector<double>(n, 10.0),
      std::vector<double>(n, 1.0),
  };
  const double makespan = pipeline_makespan(st);
  EXPECT_NEAR(makespan, 1.0 + 10.0 * n + 1.0, 1e-9);
}

TEST(Pipeline, NeverBeatsBottleneckBoundNorExceedsSerial) {
  std::vector<std::vector<double>> st = {
      {3, 1, 4, 1, 5}, {9, 2, 6, 5, 3}, {5, 8, 9, 7, 9}};
  const double makespan = pipeline_makespan(st);
  double serial = 0.0, bottleneck = 0.0;
  for (const auto& s : st) {
    double sum = 0.0;
    for (double d : s) sum += d;
    serial += sum;
    bottleneck = std::max(bottleneck, sum);
  }
  EXPECT_LE(makespan, serial);
  EXPECT_GE(makespan, bottleneck);
}

TEST(Pipeline, MakespanMatchesBruteForceEventSimulation) {
  // Cross-check the flow-shop recurrence against a brute-force simulation
  // over random stage durations.
  Rng rng(2718);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t stages = 2 + rng.uniform_index(3);
    const std::size_t items = 1 + rng.uniform_index(9);
    std::vector<std::vector<double>> st(stages,
                                        std::vector<double>(items, 0.0));
    for (auto& s : st) {
      for (double& d : s) d = rng.uniform(0.0, 10.0);
    }
    // Brute force: simulate stage/item completion times directly.
    std::vector<std::vector<double>> finish(
        stages, std::vector<double>(items, 0.0));
    for (std::size_t s = 0; s < stages; ++s) {
      for (std::size_t i = 0; i < items; ++i) {
        const double ready_prev_stage = s > 0 ? finish[s - 1][i] : 0.0;
        const double ready_prev_item = i > 0 ? finish[s][i - 1] : 0.0;
        finish[s][i] =
            std::max(ready_prev_stage, ready_prev_item) + st[s][i];
      }
    }
    EXPECT_NEAR(pipeline_makespan(st), finish[stages - 1][items - 1], 1e-12)
        << "trial " << trial;
  }
}

TEST(Pipeline, EmptyItemsGiveZero) {
  EXPECT_DOUBLE_EQ(pipeline_makespan({{}, {}}), 0.0);
}

TEST(Pipeline, RejectsRaggedStages) {
  EXPECT_THROW(pipeline_makespan({{1.0}, {1.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW(pipeline_makespan({}), std::invalid_argument);
  EXPECT_THROW(pipeline_makespan({{-1.0}}), std::invalid_argument);
  // Ragged in the other direction (later stage shorter) must also throw.
  EXPECT_THROW(pipeline_makespan({{1.0, 2.0}, {1.0}}), std::invalid_argument);
}

TEST(Pipeline, AllocationSplitsNodes) {
  const PipelineAllocation a = allocate_pipeline_nodes(16);
  EXPECT_EQ(a.input_nodes, 1);
  EXPECT_EQ(a.output_nodes, 1);
  EXPECT_EQ(a.main_nodes, 14);
  EXPECT_EQ(a.total(), 16);
  EXPECT_THROW(allocate_pipeline_nodes(2), Error);
}

TEST(Foreign, ForeignTransferCostsMoreThanNative) {
  // The Fig 13 claim: the foreign-module path adds a fixed, relatively
  // small overhead over the native-task path.
  MachineModel m = intel_paragon();
  const std::size_t bytes = 35 * 700 * 8;
  for (int src : {2, 14, 30, 62}) {
    const double native = native_transfer_seconds(m, bytes, src, 4);
    const double foreign = foreign_transfer_seconds(m, bytes, src, 4);
    EXPECT_GT(foreign, native) << "src=" << src;
    EXPECT_LT(foreign, native + 1.0) << "overhead should stay small";
  }
}

TEST(Foreign, OverheadGrowsSlowlyWithNodes) {
  MachineModel m = intel_paragon();
  const std::size_t bytes = 35 * 700 * 8;
  const double d1 = foreign_transfer_seconds(m, bytes, 4, 2) -
                    native_transfer_seconds(m, bytes, 4, 2);
  const double d2 = foreign_transfer_seconds(m, bytes, 60, 8) -
                    native_transfer_seconds(m, bytes, 60, 8);
  // "Fixed, relatively small extra overhead": within a small factor across
  // the node range.
  EXPECT_LT(d2 / d1, 4.0);
  EXPECT_GT(d2 / d1, 0.25);
}

TEST(Foreign, SyncOverheadIsIncluded) {
  MachineModel m = cray_t3e();
  ForeignCouplingOptions slow;
  slow.sync_overhead_s = 1.0;
  const double base = foreign_transfer_seconds(m, 1000, 2, 2);
  const double with = foreign_transfer_seconds(m, 1000, 2, 2, slow);
  EXPECT_NEAR(with - base, 1.0 - ForeignCouplingOptions{}.sync_overhead_s,
              1e-12);
}

TEST(Foreign, RejectsEmptySubgroups) {
  MachineModel m = cray_t3e();
  EXPECT_THROW(foreign_transfer_seconds(m, 100, 0, 2), Error);
  EXPECT_THROW(native_transfer_seconds(m, 100, 2, 0), Error);
}

}  // namespace
}  // namespace airshed
