// Tests for the cell-batched SoA kernel engine (airshed::kernel): panel
// plumbing, bit-identity of every blocked entry point against its scalar
// oracle (unit level and whole-model level), the bounded rate-cache
// eviction, and the bench JSON/timing helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <airshed/airshed.h>

#include "bench_common.hpp"

namespace {

using namespace airshed;

// ------------------------------------------------------------ panels

TEST(Kernel, PaddedLanesRoundsUpToLaneWidth) {
  EXPECT_EQ(kernel::padded_lanes(1), kernel::kLaneRound);
  EXPECT_EQ(kernel::padded_lanes(kernel::kLaneRound), kernel::kLaneRound);
  EXPECT_EQ(kernel::padded_lanes(kernel::kLaneRound + 1),
            2 * kernel::kLaneRound);
}

TEST(Kernel, ArenaPointersSurviveGrowth) {
  kernel::Arena arena;
  double* a = arena.alloc(16);
  for (int i = 0; i < 16; ++i) a[i] = 1.0 + i;
  // Force growth well past the first slab; `a` must stay valid.
  std::vector<double*> more;
  for (int n = 0; n < 64; ++n) more.push_back(arena.alloc(1024));
  for (double* p : more) p[0] = 7.0;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a[i], 1.0 + i);

  // reset() consolidates to one slab; steady state reuses it without
  // growing capacity further.
  arena.reset();
  const std::size_t cap = arena.capacity();
  ASSERT_GE(cap, 64u * 1024u);
  double* b = arena.alloc(cap / 2);
  b[0] = 3.0;
  arena.reset();
  EXPECT_EQ(arena.capacity(), cap);
}

TEST(Kernel, CellBlockGatherScatterRoundTripAndTailPadding) {
  const int ns = 3;
  ConcentrationField conc(ns, 2, 10);
  for (int s = 0; s < ns; ++s) {
    for (std::size_t k = 0; k < 2; ++k) {
      for (std::size_t c = 0; c < 10; ++c) {
        conc(s, k, c) = 100.0 * s + 10.0 * static_cast<double>(k) +
                        static_cast<double>(c);
      }
    }
  }

  kernel::CellBlock block(ns, 8);
  block.gather(conc, 1, 3, 5);
  EXPECT_EQ(block.width(), 5);
  ASSERT_GE(block.stride(), 5u);
  for (int s = 0; s < ns; ++s) {
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(block.row(s)[i], conc(s, 1, 3 + i)) << "s=" << s << " i=" << i;
    }
    // Tail lanes replicate the last real cell.
    for (std::size_t i = 5; i < block.stride(); ++i) {
      EXPECT_EQ(block.row(s)[i], conc(s, 1, 7)) << "s=" << s << " i=" << i;
    }
  }

  ConcentrationField out(ns, 2, 10, -1.0);
  block.scatter(out, 1, 3);
  for (int s = 0; s < ns; ++s) {
    for (std::size_t c = 0; c < 10; ++c) {
      if (c >= 3 && c < 8) {
        EXPECT_EQ(out(s, 1, c), conc(s, 1, c));
      } else {
        EXPECT_EQ(out(s, 1, c), -1.0);  // untouched outside the block
      }
      EXPECT_EQ(out(s, 0, c), -1.0);  // untouched other layer
    }
  }
}

// ------------------------------------------------------------ chemistry

std::vector<double> urban_state() {
  std::vector<double> c(kSpeciesCount);
  for (int s = 0; s < kSpeciesCount; ++s) {
    c[s] = background_ppm(static_cast<Species>(s));
  }
  c[index_of(Species::NO)] = 0.02;
  c[index_of(Species::NO2)] = 0.03;
  c[index_of(Species::PAR)] = 0.3;
  c[index_of(Species::OLE)] = 0.01;
  c[index_of(Species::FORM)] = 0.01;
  c[index_of(Species::CO)] = 1.0;
  return c;
}

/// Deterministic per-lane perturbation of the urban state (keeps every
/// species positive; exercises lane-divergent chemistry).
std::vector<double> lane_state(int lane) {
  std::vector<double> c = urban_state();
  for (int s = 0; s < kSpeciesCount; ++s) {
    const double f = 1.0 + 0.05 * std::sin(0.7 * lane + 0.3 * s);
    c[s] *= f;
  }
  return c;
}

TEST(Kernel, ProductionLossBlockMatchesScalarBitwise) {
  const Mechanism& m = Mechanism::cb4_condensed();
  const std::size_t nr = m.reaction_count();
  std::vector<double> k(nr);
  m.compute_rates(298.0, 0.7, k);

  for (int width : {1, 5, 7, 8, 32}) {
    const std::size_t stride = kernel::padded_lanes(width);
    std::vector<double> c(kSpeciesCount * stride), p(kSpeciesCount * stride),
        l(kSpeciesCount * stride), kp(nr * stride), scratch(stride);
    for (std::size_t i = 0; i < stride; ++i) {
      const std::vector<double> cell =
          lane_state(static_cast<int>(std::min<std::size_t>(i, width - 1)));
      for (int s = 0; s < kSpeciesCount; ++s) c[s * stride + i] = cell[s];
      for (std::size_t r = 0; r < nr; ++r) kp[r * stride + i] = k[r];
    }
    m.production_loss_block(c.data(), kp.data(), p.data(), l.data(), stride,
                            stride, scratch.data());

    std::vector<double> ps(kSpeciesCount), ls(kSpeciesCount),
        cs(kSpeciesCount);
    for (int i = 0; i < width; ++i) {
      for (int s = 0; s < kSpeciesCount; ++s) cs[s] = c[s * stride + i];
      m.production_loss(cs, k, ps, ls);
      for (int s = 0; s < kSpeciesCount; ++s) {
        EXPECT_EQ(p[s * stride + i], ps[s])
            << "width=" << width << " lane=" << i << " species=" << s;
        EXPECT_EQ(l[s * stride + i], ls[s])
            << "width=" << width << " lane=" << i << " species=" << s;
      }
    }
  }
}

TEST(Kernel, IntegrateBlockMatchesScalarBitwise) {
  const Mechanism& m = Mechanism::cb4_condensed();
  for (int width : {1, 5, 7, 8, 32, 64}) {
    ConcentrationField conc(kSpeciesCount, 1, width);
    std::vector<double> temps(width);
    for (int i = 0; i < width; ++i) {
      const std::vector<double> cell = lane_state(i);
      for (int s = 0; s < kSpeciesCount; ++s) conc(s, 0, i) = cell[s];
      temps[i] = 288.0 + 0.5 * i;  // distinct rate constants per lane
    }

    kernel::CellBlock block(kSpeciesCount, width);
    block.gather(conc, 0, 0, width);
    YoungBorisSolver blocked(m);
    std::vector<YoungBorisResult> res(width);
    blocked.integrate_block(block, 10.0, temps, 0.8, res);

    YoungBorisSolver scalar(m);
    std::vector<double> cell(kSpeciesCount);
    for (int i = 0; i < width; ++i) {
      for (int s = 0; s < kSpeciesCount; ++s) cell[s] = conc(s, 0, i);
      const YoungBorisResult ref = scalar.integrate(cell, 10.0, temps[i], 0.8);
      for (int s = 0; s < kSpeciesCount; ++s) {
        EXPECT_EQ(block.row(s)[i], cell[s])
            << "width=" << width << " lane=" << i << " species=" << s;
      }
      EXPECT_EQ(res[i].substeps, ref.substeps) << "lane=" << i;
      EXPECT_EQ(res[i].corrector_evals, ref.corrector_evals) << "lane=" << i;
      EXPECT_EQ(res[i].nonconverged_steps, ref.nonconverged_steps)
          << "lane=" << i;
      EXPECT_EQ(res[i].work_flops, ref.work_flops) << "lane=" << i;
    }
  }
}

// Regression guard for the lane-compaction bookkeeping: wildly
// heterogeneous lanes retire at very different times over a long interval,
// so surviving slots are shifted repeatedly — including while in the
// substep-retry state, where the solver reuses the slot's P0/L0 without a
// dense recompute. A shift that forgets to move any per-slot panel column
// (state, rates, P0/L0, control scalars) breaks bit-identity here.
TEST(Kernel, IntegrateBlockCompactionKeepsBitIdentity) {
  const Mechanism& m = Mechanism::cb4_condensed();
  for (int width : {2, 5, 7, 32}) {
    ConcentrationField conc(kSpeciesCount, 1, width);
    std::vector<double> temps(width);
    for (int i = 0; i < width; ++i) {
      // Near-trace background with a few elevated species, scaled across
      // two orders of magnitude per lane: substep counts (and retirement
      // times) diverge hard, and the substep controller rejects often
      // enough that compaction rounds leave only retrying survivors —
      // exactly the state whose P0/L0 reuse the shift must preserve.
      // (This profile reproduced the original panel-shift bug; the richer
      // urban_state() did not.)
      std::vector<double> cell(kSpeciesCount, 1e-4);
      cell[0] = 0.08;
      cell[1] = 0.02;
      cell[2] = 0.12;
      const double boost = 1.0 + 40.0 * (i % 5) / 4.0;
      for (int s = 0; s < kSpeciesCount; ++s) {
        conc(s, 0, i) =
            cell[s] * boost * (1.0 + 0.05 * std::sin(0.7 * i + 0.3 * s));
      }
      temps[i] = 285.0 + 2.0 * (i % 7);
    }

    kernel::CellBlock block(kSpeciesCount, width);
    block.gather(conc, 0, 0, width);
    YoungBorisSolver blocked(m);
    std::vector<YoungBorisResult> res(width);
    blocked.integrate_block(block, 60.0, temps, 0.35, res);

    YoungBorisSolver scalar(m);
    std::vector<double> cell(kSpeciesCount);
    for (int i = 0; i < width; ++i) {
      for (int s = 0; s < kSpeciesCount; ++s) cell[s] = conc(s, 0, i);
      const YoungBorisResult ref = scalar.integrate(cell, 60.0, temps[i], 0.35);
      for (int s = 0; s < kSpeciesCount; ++s) {
        EXPECT_EQ(block.row(s)[i], cell[s])
            << "width=" << width << " lane=" << i << " species=" << s;
      }
      EXPECT_EQ(res[i].substeps, ref.substeps)
          << "width=" << width << " lane=" << i;
      EXPECT_EQ(res[i].corrector_evals, ref.corrector_evals)
          << "width=" << width << " lane=" << i;
    }
  }
}

// --------------------------------------- lane masking / SIMD edge cases

TEST(Kernel, LaneSegmentsSkipDeadGroupsAndCoalesce) {
  const std::size_t R = kernel::kLaneRound;
  std::vector<double> mask(4 * R, 0.0);
  std::vector<kernel::LaneSegment> segs;

  // All dead: no segments, no lanes.
  kernel::segments_where(mask.data(), 1.0, 4 * R, 4 * R, segs);
  EXPECT_TRUE(segs.empty());
  EXPECT_EQ(kernel::segment_lanes(segs), 0u);

  // One live lane in group 0 and one in group 2: two segments, a full
  // group each; the dead group between them is skipped.
  mask[1] = 1.0;
  mask[2 * R + 3] = 1.0;
  kernel::segments_where(mask.data(), 1.0, 4 * R, 4 * R, segs);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].begin, 0u);
  EXPECT_EQ(segs[0].end, R);
  EXPECT_EQ(segs[1].begin, 2 * R);
  EXPECT_EQ(segs[1].end, 3 * R);
  EXPECT_EQ(kernel::segment_lanes(segs), 2 * R);

  // Adjacent live groups coalesce: with group 1 now live too, groups
  // 0..2 form one contiguous segment.
  mask[R] = 1.0;
  kernel::segments_where(mask.data(), 1.0, 4 * R, 4 * R, segs);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].begin, 0u);
  EXPECT_EQ(segs[0].end, 3 * R);

  // limit < La: live flags beyond `limit` are ignored, but a live group
  // still extends to La (padding lanes ride along in the dense pass).
  std::fill(mask.begin(), mask.end(), 0.0);
  mask[0] = 1.0;
  mask[R + 1] = 1.0;  // beyond limit: must not wake group 1
  kernel::segments_where(mask.data(), 1.0, /*limit=*/3, /*La=*/2 * R, segs);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].begin, 0u);
  EXPECT_EQ(segs[0].end, R);
  EXPECT_EQ(kernel::count_lanes(mask.data(), 1.0, 3), 1u);
}

// The block-solver front end: LaneMode::strict must reproduce the scalar
// oracle bit for bit, including at widths below one vector group (the
// whole block is one ragged tail).
TEST(Kernel, BlockSolverStrictMatchesScalarBitwise) {
  const Mechanism& m = Mechanism::cb4_condensed();
  for (int width : {1, 3, 8, 21, 64}) {
    ConcentrationField conc(kSpeciesCount, 1, width);
    std::vector<double> temps(width);
    for (int i = 0; i < width; ++i) {
      const std::vector<double> cell = lane_state(i);
      for (int s = 0; s < kSpeciesCount; ++s) conc(s, 0, i) = cell[s];
      temps[i] = 288.0 + 0.5 * i;
    }

    kernel::CellBlock block(kSpeciesCount, width);
    block.gather(conc, 0, 0, width);
    YoungBorisBlockSolver blocked(m);
    EXPECT_EQ(blocked.mode(), kernel::LaneMode::strict);
    std::vector<YoungBorisResult> res(width);
    blocked.integrate_block(block, 10.0, temps, 0.8, res);

    YoungBorisSolver scalar(m);
    std::vector<double> cell(kSpeciesCount);
    for (int i = 0; i < width; ++i) {
      for (int s = 0; s < kSpeciesCount; ++s) cell[s] = conc(s, 0, i);
      const YoungBorisResult ref = scalar.integrate(cell, 10.0, temps[i], 0.8);
      for (int s = 0; s < kSpeciesCount; ++s) {
        EXPECT_EQ(block.row(s)[i], cell[s])
            << "width=" << width << " lane=" << i << " species=" << s;
      }
      EXPECT_EQ(res[i].substeps, ref.substeps) << "lane=" << i;
      EXPECT_EQ(res[i].corrector_evals, ref.corrector_evals) << "lane=" << i;
    }
  }
}

// One stiff outlier in an otherwise quiet block: the outlier keeps
// iterating (and substepping) long after every other lane converged, so
// the group-masked corrector scheduling must freeze the quiet lanes
// bit-exactly while the hot lane runs to completion.
TEST(Kernel, IntegrateBlockSingleStiffLaneKeepsBitIdentity) {
  const Mechanism& m = Mechanism::cb4_condensed();
  const int width = 24;
  const int hot = 13;  // inside the second vector group
  ConcentrationField conc(kSpeciesCount, 1, width);
  std::vector<double> temps(width, 292.0);
  for (int i = 0; i < width; ++i) {
    // Quiet near-background lanes...
    for (int s = 0; s < kSpeciesCount; ++s) conc(s, 0, i) = 1e-4;
    if (i == hot) {
      // ...except one polluted, fast-chemistry cell.
      const std::vector<double> cell = lane_state(3);
      for (int s = 0; s < kSpeciesCount; ++s) conc(s, 0, i) = 10.0 * cell[s];
      temps[i] = 310.0;
    }
  }

  kernel::CellBlock block(kSpeciesCount, width);
  block.gather(conc, 0, 0, width);
  YoungBorisSolver blocked(m);
  std::vector<YoungBorisResult> res(width);
  blocked.integrate_block(block, 30.0, temps, 0.9, res);

  YoungBorisSolver scalar(m);
  std::vector<double> cell(kSpeciesCount);
  for (int i = 0; i < width; ++i) {
    for (int s = 0; s < kSpeciesCount; ++s) cell[s] = conc(s, 0, i);
    const YoungBorisResult ref = scalar.integrate(cell, 30.0, temps[i], 0.9);
    for (int s = 0; s < kSpeciesCount; ++s) {
      EXPECT_EQ(block.row(s)[i], cell[s]) << "lane=" << i << " species=" << s;
    }
    EXPECT_EQ(res[i].corrector_evals, ref.corrector_evals) << "lane=" << i;
    EXPECT_EQ(res[i].substeps, ref.substeps) << "lane=" << i;
  }
  // The scenario is only meaningful if per-lane work actually diverged
  // (the masked scheduling had converged/live groups to tell apart).
  EXPECT_NE(res[hot].corrector_evals, res[0].corrector_evals);
  EXPECT_GT(blocked.lane_evals_dense(), blocked.lane_evals_live());
}

// A block of identical easy lanes converges in lockstep; the
// all-lanes-converged early exit must not change any per-lane accounting
// relative to the scalar oracle, and the live/dense occupancy counters
// must see full groups.
TEST(Kernel, IntegrateBlockAllLanesConvergedEarlyExit) {
  const Mechanism& m = Mechanism::cb4_condensed();
  const int width = 16;
  ConcentrationField conc(kSpeciesCount, 1, width);
  std::vector<double> temps(width, 295.0);
  const std::vector<double> cell0 = lane_state(0);
  for (int i = 0; i < width; ++i) {
    for (int s = 0; s < kSpeciesCount; ++s) conc(s, 0, i) = cell0[s];
  }

  kernel::CellBlock block(kSpeciesCount, width);
  block.gather(conc, 0, 0, width);
  YoungBorisSolver blocked(m);
  std::vector<YoungBorisResult> res(width);
  blocked.integrate_block(block, 2.0, temps, 0.0, res);

  YoungBorisSolver scalar(m);
  std::vector<double> cell(kSpeciesCount);
  for (int s = 0; s < kSpeciesCount; ++s) cell[s] = cell0[s];
  const YoungBorisResult ref = scalar.integrate(cell, 2.0, temps[0], 0.0);
  for (int i = 0; i < width; ++i) {
    for (int s = 0; s < kSpeciesCount; ++s) {
      EXPECT_EQ(block.row(s)[i], cell[s]) << "lane=" << i << " species=" << s;
    }
    EXPECT_EQ(res[i].corrector_evals, ref.corrector_evals) << "lane=" << i;
    EXPECT_EQ(res[i].substeps, ref.substeps) << "lane=" << i;
  }

  // Identical lanes: every dense group held live work, so occupancy is
  // exactly nact/La (16 live of 16 padded); dense >= live always.
  EXPECT_GT(blocked.block_rounds(), 0LL);
  EXPECT_GT(blocked.lane_evals_live(), 0LL);
  EXPECT_EQ(blocked.lane_evals_dense(), blocked.lane_evals_live());
}

// NaN poison entering the vector path must be caught at the substep that
// produced it, with the species and lane named — not committed silently.
TEST(Kernel, IntegrateBlockNaNTripwireNamesSpeciesAndLane) {
  const Mechanism& m = Mechanism::cb4_condensed();
  const int width = 8;
  ConcentrationField conc(kSpeciesCount, 1, width);
  std::vector<double> temps(width, 298.0);
  for (int i = 0; i < width; ++i) {
    const std::vector<double> cell = lane_state(i);
    for (int s = 0; s < kSpeciesCount; ++s) conc(s, 0, i) = cell[s];
  }
  conc(2, 0, 5) = std::numeric_limits<double>::quiet_NaN();

  kernel::CellBlock block(kSpeciesCount, width);
  block.gather(conc, 0, 0, width);
  YoungBorisSolver blocked(m);
  std::vector<YoungBorisResult> res(width);
  try {
    blocked.integrate_block(block, 10.0, temps, 0.8, res);
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("block lane 5"), std::string::npos) << what;
    EXPECT_NE(what.find("non-finite"), std::string::npos) << what;
  }
}

// The tolerance profile (FMA-contracted kernels, division-free convergence
// slack) is not bit-identical — it is held to the documented relative
// bound against the strict/scalar result instead (docs/BENCHMARKS.md).
TEST(Kernel, ToleranceModeStaysWithinRelativeBound) {
  const Mechanism& m = Mechanism::cb4_condensed();
  const int width = 64;
  ConcentrationField conc(kSpeciesCount, 1, width);
  std::vector<double> temps(width);
  for (int i = 0; i < width; ++i) {
    const std::vector<double> cell = lane_state(i);
    for (int s = 0; s < kSpeciesCount; ++s) conc(s, 0, i) = cell[s];
    temps[i] = 288.0 + 0.5 * i;
  }

  kernel::CellBlock strict_block(kSpeciesCount, width);
  strict_block.gather(conc, 0, 0, width);
  YoungBorisBlockSolver strict_solver(m);
  std::vector<YoungBorisResult> res(width);
  strict_solver.integrate_block(strict_block, 30.0, temps, 0.8, res);

  kernel::CellBlock tol_block(kSpeciesCount, width);
  tol_block.gather(conc, 0, 0, width);
  YoungBorisBlockSolver tol_solver(m, {}, kernel::LaneMode::tolerance);
  EXPECT_EQ(tol_solver.mode(), kernel::LaneMode::tolerance);
  std::vector<YoungBorisResult> tol_res(width);
  tol_solver.integrate_block(tol_block, 30.0, temps, 0.8, tol_res);

  double worst = 0.0;
  for (int s = 0; s < kSpeciesCount; ++s) {
    for (int i = 0; i < width; ++i) {
      const double ref = strict_block.row(s)[i];
      const double got = tol_block.row(s)[i];
      ASSERT_TRUE(std::isfinite(got)) << "lane=" << i << " species=" << s;
      const double scale = std::max(std::abs(ref), 1e-9);
      worst = std::max(worst, std::abs(got - ref) / scale);
    }
  }
  // Documented bound (with margin over the measured error on the
  // reference host): every final concentration within 1e-6 relative.
  EXPECT_LE(worst, 1e-6);
  // Same physics: substep counts may differ slightly but must be close.
  for (int i = 0; i < width; ++i) {
    EXPECT_NEAR(tol_res[i].substeps, res[i].substeps,
                std::max(2.0, 0.25 * res[i].substeps))
        << "lane=" << i;
  }
}

TEST(Kernel, IntegrateBlockReusesArenaAcrossCalls) {
  const Mechanism& m = Mechanism::cb4_condensed();
  ConcentrationField conc(kSpeciesCount, 1, 32);
  for (int i = 0; i < 32; ++i) {
    const std::vector<double> cell = lane_state(i);
    for (int s = 0; s < kSpeciesCount; ++s) conc(s, 0, i) = cell[s];
  }
  const std::vector<double> temps(32, 295.0);
  YoungBorisSolver solver(m);
  kernel::CellBlock block(kSpeciesCount, 32);
  std::vector<YoungBorisResult> res(32);
  block.gather(conc, 0, 0, 32);
  solver.integrate_block(block, 5.0, temps, 0.5, res);
  // Repeated calls at the same width must not grow the scratch arena —
  // steady state performs zero heap allocation in the time loop.
  // (The arena is private; observable contract: results stay identical
  // and no crash/regrowth. Run a few more to exercise reset()+reuse.)
  for (int rep = 0; rep < 3; ++rep) {
    block.gather(conc, 0, 0, 32);
    solver.integrate_block(block, 5.0, temps, 0.5, res);
  }
  for (int i = 0; i < 32; ++i) EXPECT_GT(res[i].substeps, 0);
}

// ------------------------------------------------------------ rate cache

TEST(Kernel, RateCacheBoundedEvictionAndAccounting) {
  YoungBorisOptions opts;
  opts.rate_cache_entries = 8;
  YoungBorisSolver solver(Mechanism::cb4_condensed(), opts);
  std::vector<double> c = urban_state();

  // More distinct keys than capacity, cycled repeatedly: the cache must
  // stay bounded and evict one victim at a time (no clear-everything
  // thundering herd: evictions, not wholesale drops, absorb the overflow).
  long long calls = 0;
  for (int round = 0; round < 3; ++round) {
    for (int t = 0; t < 20; ++t) {
      std::vector<double> cell = c;
      solver.integrate(cell, 0.1, 285.0 + t, 0.5);
      ++calls;
    }
  }
  EXPECT_LE(solver.rate_cache_size(), opts.rate_cache_entries);
  EXPECT_GT(solver.rate_cache_evictions(), 0);
  // Every integrate() resolves its rates exactly once: either a cached hit
  // or one compute_rates evaluation.
  EXPECT_EQ(solver.rate_cache_hits() + solver.rate_evals(), calls);
  // Single-victim eviction: at most one eviction per miss.
  EXPECT_LE(solver.rate_cache_evictions(), solver.rate_evals());

  // A hot key hammered while the cache is full keeps hitting.
  const long long hits_before = solver.rate_cache_hits();
  std::vector<double> cell = c;
  solver.integrate(cell, 0.1, 350.0, 0.5);  // one miss to insert the key
  for (int i = 0; i < 50; ++i) {
    cell = c;
    solver.integrate(cell, 0.1, 350.0, 0.5);
  }
  EXPECT_EQ(solver.rate_cache_hits(), hits_before + 50);
  EXPECT_LE(solver.rate_cache_size(), opts.rate_cache_entries);
}

TEST(Kernel, RateCacheOffStillExact) {
  YoungBorisOptions cached, uncached;
  uncached.cache_rates = false;
  YoungBorisSolver a(Mechanism::cb4_condensed(), cached);
  YoungBorisSolver b(Mechanism::cb4_condensed(), uncached);
  std::vector<double> ca = urban_state(), cb = urban_state();
  for (int t = 0; t < 5; ++t) {
    a.integrate(ca, 1.0, 290.0 + t, 0.6);
    b.integrate(cb, 1.0, 290.0 + t, 0.6);
  }
  for (int s = 0; s < kSpeciesCount; ++s) EXPECT_EQ(ca[s], cb[s]);
  EXPECT_EQ(b.rate_cache_hits(), 0);
  EXPECT_EQ(b.rate_cache_size(), 0u);
}

// ------------------------------------------------------------ tridiagonal

TEST(Kernel, TridiagonalBlockMatchesScalarBitwise) {
  const int n = 5;
  std::vector<double> lower(n), diag(n), upper(n);
  for (int i = 0; i < n; ++i) {
    lower[i] = i == 0 ? 0.0 : -0.3 - 0.01 * i;
    upper[i] = i == n - 1 ? 0.0 : -0.4 + 0.02 * i;
    diag[i] = 2.0 + 0.1 * i;
  }
  for (int width : {1, 3, 8, 13}) {
    const std::size_t stride = kernel::padded_lanes(width);
    std::vector<double> rhs(n * stride), scratch(n);
    for (int i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < stride; ++j) {
        rhs[i * stride + j] = std::sin(1.3 * i + 0.7 * static_cast<double>(j));
      }
    }
    std::vector<double> rhs_block = rhs;
    solve_tridiagonal_block(lower, diag, upper, rhs_block.data(), stride,
                            stride, scratch);
    for (int j = 0; j < width; ++j) {
      std::vector<double> col(n), scr(n);
      for (int i = 0; i < n; ++i) col[i] = rhs[i * stride + j];
      solve_tridiagonal(lower, diag, upper, col, scr);
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(rhs_block[i * stride + j], col[i])
            << "width=" << width << " lane=" << j << " row=" << i;
      }
    }
  }
}

// ------------------------------------------------------------ vertical

TEST(Kernel, VerticalAdvanceColumnsMatchesScalarBitwise) {
  const int nl = 5;
  const std::size_t nodes = 11;  // ragged vs any power-of-two lane width
  VerticalTransport scalar_op(Meteorology::layer_thickness_m(nl));
  VerticalTransport block_op(Meteorology::layer_thickness_m(nl));

  ConcentrationField ref(kSpeciesCount, nl, nodes);
  for (int s = 0; s < kSpeciesCount; ++s) {
    for (int k = 0; k < nl; ++k) {
      for (std::size_t c = 0; c < nodes; ++c) {
        ref(s, k, c) = 0.01 + 0.001 * s + 0.0001 * k +
                       0.00001 * static_cast<double>(c);
      }
    }
  }
  ConcentrationField blk = ref;

  std::vector<double> kz(nl - 1, 25.0);
  kz[1] = 40.0;
  Array2<double> surface(kSpeciesCount, nodes, 0.0);
  for (std::size_t c = 0; c < nodes; ++c) {
    surface(index_of(Species::NO), c) = 1e-4 * (1.0 + static_cast<double>(c));
    surface(index_of(Species::CO), c) = 2e-3;
  }
  std::vector<double> deposition(kSpeciesCount, 0.0);
  deposition[index_of(Species::O3)] = 0.004;
  // One column gets an elevated point-source flux.
  std::vector<double> elevated(static_cast<std::size_t>(kSpeciesCount) * nl,
                               0.0);
  elevated[static_cast<std::size_t>(index_of(Species::SO2)) * nl + 2] = 0.05;
  const std::size_t src_node = 4;

  const double dt = 3.0;
  std::vector<double> col_flux(kSpeciesCount);
  std::vector<double> work_scalar(nodes, 0.0);
  for (std::size_t c = 0; c < nodes; ++c) {
    for (int s = 0; s < kSpeciesCount; ++s) col_flux[s] = surface(s, c);
    work_scalar[c] =
        scalar_op
            .advance_column(ref, c, kz, col_flux, deposition,
                            c == src_node ? std::span<const double>(elevated)
                                          : std::span<const double>(),
                            dt)
            .work_flops;
  }

  std::vector<const double*> elev(nodes, nullptr);
  elev[src_node] = elevated.data();
  // Two ragged blocks: [0, 8) and [8, 11).
  const VerticalStepResult r1 = block_op.advance_columns(
      blk, 0, 8, kz, surface, deposition,
      std::span<const double* const>(elev.data(), 8), dt);
  const VerticalStepResult r2 = block_op.advance_columns(
      blk, 8, 3, kz, surface, deposition,
      std::span<const double* const>(elev.data() + 8, 3), dt);

  for (int s = 0; s < kSpeciesCount; ++s) {
    for (int k = 0; k < nl; ++k) {
      for (std::size_t c = 0; c < nodes; ++c) {
        EXPECT_EQ(blk(s, k, c), ref(s, k, c))
            << "s=" << s << " k=" << k << " c=" << c;
      }
    }
  }
  for (std::size_t c = 0; c < nodes; ++c) {
    EXPECT_EQ(c < 8 ? r1.work_flops : r2.work_flops, work_scalar[c]);
  }
}

// ------------------------------------------------------------ transport

TEST(Kernel, OneDimBlockedLayerMatchesScalarBitwise) {
  const UniformGrid grid(BBox{0, 0, 40, 30}, 8, 6);
  OneDimTransport scalar_op(grid), block_op(grid);

  ConcentrationField ref(kSpeciesCount, 2, grid.cell_count());
  for (int s = 0; s < kSpeciesCount; ++s) {
    for (std::size_t c = 0; c < grid.cell_count(); ++c) {
      ref(s, 0, c) = 0.02 + 0.001 * s + 1e-4 * static_cast<double>(c % 7);
      ref(s, 1, c) = 0.01 + 0.002 * s;
    }
  }
  ConcentrationField blk = ref;

  std::vector<Point2> vel(grid.cell_count());
  for (std::size_t c = 0; c < grid.cell_count(); ++c) {
    vel[c] = Point2{5.0 + 0.1 * static_cast<double>(c % 5),
                    -3.0 + 0.2 * static_cast<double>(c % 3)};
  }
  std::vector<double> bg(kSpeciesCount);
  for (int s = 0; s < kSpeciesCount; ++s) {
    bg[s] = background_ppm(static_cast<Species>(s));
  }

  const TransportStepResult a =
      scalar_op.advance_layer(ref, 0, vel, 12.0, 0.5, bg);
  for (int species_block : {1, 3, 8, 64}) {
    ConcentrationField trial = blk;
    const TransportStepResult b = block_op.advance_layer_blocked(
        trial, 0, vel, 12.0, 0.5, bg, species_block);
    EXPECT_EQ(b.work_flops, a.work_flops) << "sb=" << species_block;
    EXPECT_EQ(b.substeps, a.substeps) << "sb=" << species_block;
    for (int s = 0; s < kSpeciesCount; ++s) {
      for (std::size_t c = 0; c < grid.cell_count(); ++c) {
        EXPECT_EQ(trial(s, 0, c), ref(s, 0, c))
            << "sb=" << species_block << " s=" << s << " c=" << c;
        EXPECT_EQ(trial(s, 1, c), blk(s, 1, c)) << "other layer touched";
      }
    }
  }
}

// ------------------------------------------------------------ model level

std::uint64_t outputs_checksum(const ModelRunResult& r) {
  std::uint64_t h = fnv1a(r.outputs.conc.flat());
  h = fnv1a(r.outputs.pm.flat(), h);
  for (const HourlyStats& s : r.outputs.hourly) {
    h = fnv1a(s.max_surface_o3_ppm, h);
    h = fnv1a(s.mean_surface_o3_ppm, h);
    h = fnv1a(s.mean_surface_no2_ppm, h);
    h = fnv1a(s.mean_surface_co_ppm, h);
  }
  for (const HourTrace& hour : r.trace.hours) {
    for (const StepTrace& step : hour.steps) {
      h = fnv1a(std::span<const double>(step.transport1_layer_work), h);
      h = fnv1a(std::span<const double>(step.transport2_layer_work), h);
      h = fnv1a(std::span<const double>(step.chem_column_work), h);
      h = fnv1a(step.aerosol_work, h);
    }
  }
  return h;
}

ModelOptions kernel_opts(bool blocked, int block, int threads) {
  ModelOptions opts;
  opts.hours = 1;
  opts.host_threads = threads;
  opts.oversubscribe = true;  // keep real multi-thread coverage on small hosts
  opts.kernel.blocked = blocked;
  opts.kernel.block = block;
  return opts;
}

/// The property at the heart of the engine: every (block, threads)
/// configuration reproduces the scalar oracle bit for bit, ragged tails
/// included (702 % 32 = 30, 702 % 64 = 62 on the LA multiscale mesh).
TEST(Kernel, MultiscaleModelBlockedMatchesScalarAcrossBlocksAndThreads) {
  const Dataset la = la_basin_dataset();
  const std::uint64_t oracle =
      outputs_checksum(AirshedModel(la, kernel_opts(false, 32, 1)).run());
  for (int block : {1, 7, 32, 64}) {
    for (int threads : {1, 4, 8}) {
      const std::uint64_t h = outputs_checksum(
          AirshedModel(la, kernel_opts(true, block, threads)).run());
      EXPECT_EQ(h, oracle) << "block=" << block << " threads=" << threads;
    }
  }
}

/// Same property on the uniform-grid model (1600 cells: 1600 % 7 = 4
/// exercises a ragged tail at block 7).
TEST(Kernel, UniformModelBlockedMatchesScalarAcrossBlocksAndThreads) {
  const UniformDataset la = la_uniform_dataset();
  const std::uint64_t oracle = outputs_checksum(
      UniformAirshedModel(la, kernel_opts(false, 32, 1)).run());
  for (int block : {1, 7, 32, 64}) {
    for (int threads : {1, 4, 8}) {
      const std::uint64_t h = outputs_checksum(
          UniformAirshedModel(la, kernel_opts(true, block, threads)).run());
      EXPECT_EQ(h, oracle) << "block=" << block << " threads=" << threads;
    }
  }
}

// ------------------------------------------------------------- tripwire

TEST(Kernel, CheckBlockFiniteNamesTheFirstPoisonedCell) {
  ConcentrationField conc(3, 2, 10, 1e-3);
  // A clean field passes every block.
  EXPECT_NO_THROW(kernel::check_block_finite(conc, 0, 10, 5, 0));

  conc(1, 1, 6) = std::numeric_limits<double>::quiet_NaN();
  // Blocks that do not cover cell 6 stay clean.
  EXPECT_NO_THROW(kernel::check_block_finite(conc, 0, 6, 5, 0));
  try {
    kernel::check_block_finite(conc, 4, 4, 5, 1);
    FAIL() << "NaN not detected";
  } catch (const kernel::NumericsError& e) {
    EXPECT_EQ(e.hour(), 5);
    EXPECT_EQ(e.block(), 1);
    EXPECT_EQ(e.species(), 1);
    EXPECT_EQ(e.cell(), 6u);
    EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos);
  }

  // Infinities trip it too.
  conc(1, 1, 6) = std::numeric_limits<double>::infinity();
  EXPECT_THROW(kernel::check_block_finite(conc, 0, 10, 5, 0),
               kernel::NumericsError);
}

TEST(Kernel, ModelTripwireRaisesTypedErrorOnPoisonedEmissionStack) {
  // An infinite emission rate is the classic way poisoned state enters
  // the field (a NaN is already rejected by the inventory's rate >= 0
  // validation): it flows through the elevated flux into vertical
  // transport and must be caught at the very block commit that wrote it —
  // hour 0, with the poisoned species named — not hours later as a
  // mystery NaN.
  DatasetSpec spec = test_basin_spec();
  spec.stacks.push_back(PointSource{spec.domain.center(), 1, Species::SO2,
                                    std::numeric_limits<double>::infinity()});
  const Dataset ds = build_dataset(spec);

  ModelOptions opts;
  opts.hours = 1;
  try {
    AirshedModel(ds, opts).run();
    FAIL() << "poisoned stack survived the run";
  } catch (const kernel::NumericsError& e) {
    EXPECT_EQ(e.hour(), 0);
    EXPECT_GE(e.block(), 0);
    EXPECT_EQ(e.species(), static_cast<int>(Species::SO2));
  }

  // The tripwire is free on clean runs: disabling it must not change the
  // committed fields bit-for-bit.
  DatasetSpec clean_spec = test_basin_spec();
  const Dataset clean = build_dataset(clean_spec);
  ModelOptions on = kernel_opts(true, 32, 2);
  on.kernel.tripwire = true;
  ModelOptions off = kernel_opts(true, 32, 2);
  off.kernel.tripwire = false;
  EXPECT_EQ(outputs_checksum(AirshedModel(clean, on).run()),
            outputs_checksum(AirshedModel(clean, off).run()));
}

// ------------------------------------------------------------ bench utils

TEST(Kernel, JsonWriterEscapesControlCharacters) {
  bench::JsonWriter json;
  json.begin_object();
  json.key("s").value(std::string_view("a\"b\\c\x01\n\r\t\b\f"));
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\"s\":\"a\\\"b\\\\c\\u0001\\n\\r\\t\\b\\f\"}");
}

TEST(Kernel, JsonWriterKeysKeepInsertionOrder) {
  bench::JsonWriter json;
  json.begin_object();
  json.key("zebra").value(1);
  json.key("alpha").begin_array();
  json.value(2.5);
  json.value(false);
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(), "{\"zebra\":1,\"alpha\":[2.5,false]}");
}

TEST(Kernel, MeasureWallReportsMedianAndMin) {
  int runs = 0;
  const bench::WallStats st =
      bench::measure_wall(2, 5, [&] { ++runs; });
  EXPECT_EQ(runs, 7);  // warmup + timed
  EXPECT_EQ(st.samples_s.size(), 5u);
  EXPECT_GE(st.median_s, st.min_s);
  EXPECT_GE(st.min_s, 0.0);
}

}  // namespace
