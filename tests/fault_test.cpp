// Tests for the fault-injection / checkpoint-restart subsystem: plan
// determinism, pay-for-what-you-use zero-fault identity, recovery
// accounting invariants, model checkpoint/restart equivalence, and the
// degraded-mode foreign coupling.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>

#include "airshed/core/executor.hpp"
#include "airshed/core/model.hpp"
#include "airshed/fault/fault_plan.hpp"
#include "airshed/fault/recovery.hpp"
#include "airshed/fxsim/foreign.hpp"
#include "airshed/io/archive.hpp"
#include "airshed/io/dataset.hpp"
#include "airshed/popexp/popexp.hpp"
#include "airshed/transport/supg.hpp"
#include "airshed/util/error.hpp"

namespace airshed {
namespace {

/// One shared short physics run for all fault tests.
const ModelRunResult& shared_run() {
  static const ModelRunResult run = [] {
    Dataset ds = test_basin_dataset();
    ModelOptions opts;
    opts.hours = 6;
    return AirshedModel(ds, opts).run();
  }();
  return run;
}

FaultModelOptions cocktail() {
  FaultModelOptions f;
  f.node_mtbf_hours = 40.0;  // with 16 nodes over 6 hours: failures likely
  f.slowdown_probability = 0.2;
  f.message_drop_probability = 0.05;
  return f;
}

/// A seed whose plan kills at least one node inside the run horizon (the
/// draws are deterministic, so the scan is too).
std::uint64_t seed_with_failure(int nodes, int hours,
                                const FaultModelOptions& opts) {
  for (std::uint64_t seed = 1; seed < 200; ++seed) {
    if (FaultPlan::make(seed, nodes, hours, opts).has_failures()) return seed;
  }
  ADD_FAILURE() << "no failing seed found in 200 draws";
  return 0;
}

// ------------------------------------------------------------- FaultPlan

TEST(FaultPlan, SameSeedSamePlan) {
  const FaultModelOptions f = cocktail();
  const FaultPlan a = FaultPlan::make(42, 16, 6, f);
  const FaultPlan b = FaultPlan::make(42, 16, 6, f);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, FaultPlan::make(43, 16, 6, f));
}

TEST(FaultPlan, DefaultPlanIsEmpty) {
  const FaultPlan p;
  EXPECT_TRUE(p.empty());
  EXPECT_FALSE(p.has_failures());
  EXPECT_DOUBLE_EQ(p.slowdown(0, 0), 1.0);
  EXPECT_EQ(p.drops(0, 0), 0);
}

TEST(FaultPlan, ZeroOptionsPlanIsEmpty) {
  EXPECT_TRUE(FaultPlan::make(7, 16, 6, FaultModelOptions{}).empty());
}

TEST(FaultPlan, SlowdownsBoundedAndStateless) {
  FaultModelOptions f;
  f.slowdown_probability = 0.5;
  f.slowdown_cap = 4.0;
  const FaultPlan p = FaultPlan::make(11, 8, 12, f);
  bool straggled = false;
  for (int h = 0; h < 12; ++h) {
    for (int n = 0; n < 8; ++n) {
      const double s = p.slowdown(h, n);
      EXPECT_GE(s, 1.0);
      EXPECT_LE(s, f.slowdown_cap);
      EXPECT_DOUBLE_EQ(s, p.slowdown(h, n));  // repeat query: same answer
      if (s > 1.0) straggled = true;
    }
  }
  EXPECT_TRUE(straggled);
  EXPECT_DOUBLE_EQ(p.slowdown(-1, 0), 1.0);
  EXPECT_DOUBLE_EQ(p.slowdown(99, 0), 1.0);  // outside the horizon
}

TEST(FaultPlan, DropsBoundedAndStateless) {
  FaultModelOptions f;
  f.message_drop_probability = 0.3;
  f.max_drops_per_phase = 3;
  const FaultPlan p = FaultPlan::make(5, 8, 8, f);
  bool dropped = false;
  for (int h = 0; h < 8; ++h) {
    for (long long seq = 0; seq < 40; ++seq) {
      const int d = p.drops(h, seq);
      EXPECT_GE(d, 0);
      EXPECT_LE(d, f.max_drops_per_phase);
      EXPECT_EQ(d, p.drops(h, seq));  // replayed hours redraw identically
      if (d > 0) dropped = true;
    }
  }
  EXPECT_TRUE(dropped);
}

TEST(FaultPlan, FailureTimesExponentialAndTruncated) {
  FaultModelOptions f;
  f.node_mtbf_hours = 10.0;
  const FaultPlan p = FaultPlan::make(3, 32, 24, f);
  int failures = 0;
  for (int n = 0; n < 32; ++n) {
    const double t = p.failure_hour(n);
    if (std::isfinite(t)) {
      ++failures;
      EXPECT_GE(t, 0.0);
      EXPECT_LT(t, 24.0);
    }
  }
  EXPECT_EQ(failures, p.failure_count());
  EXPECT_GT(failures, 0);  // 32 nodes, MTBF 10 h, 24 h: ~29 expected
}

TEST(FaultPlan, RejectsBadOptions) {
  FaultModelOptions f;
  f.slowdown_probability = 1.5;
  EXPECT_THROW(FaultPlan::make(1, 4, 4, f), Error);
  f = FaultModelOptions{};
  f.node_mtbf_hours = -1.0;
  EXPECT_THROW(FaultPlan::make(1, 4, 4, f), Error);
  f = FaultModelOptions{};
  f.message_drop_probability = -0.1;
  EXPECT_THROW(FaultPlan::make(1, 4, 4, f), Error);
}

// ------------------------------------------- zero-fault identity (pay-
// for-what-you-use: an empty plan takes the exact fault-free code path)

TEST(ZeroFault, SimulationIdenticalToUnconfiguredRun) {
  const WorkTrace& t = shared_run().trace;
  ExecutionConfig plain{intel_paragon(), 16, Strategy::DataParallel};
  ExecutionConfig zero = plain;
  zero.faults = FaultPlan::make(123, 16, 6, FaultModelOptions{});
  ASSERT_TRUE(zero.faults.empty());

  const RunReport a = simulate_execution(t, plain);
  const RunReport b = simulate_execution(t, zero);
  EXPECT_EQ(a.total_seconds, b.total_seconds);  // bitwise, not just near
  EXPECT_EQ(a.ledger.total_seconds(), b.ledger.total_seconds());
  EXPECT_DOUBLE_EQ(a.ledger.category_seconds(PhaseCategory::Recovery), 0.0);
  EXPECT_DOUBLE_EQ(b.ledger.category_seconds(PhaseCategory::Recovery), 0.0);
  EXPECT_EQ(b.recovery.checkpoints, 0);
  EXPECT_EQ(b.recovery.failures.size(), 0u);
  EXPECT_DOUBLE_EQ(b.recovery.total_overhead_s(), 0.0);
}

TEST(ZeroFault, HourMainOverloadsAgree) {
  const WorkTrace& t = shared_run().trace;
  const MachineModel m = cray_t3e();
  const FaultPlan empty;
  const RetryPolicy retry;
  for (std::size_t h = 0; h < t.hours.size(); ++h) {
    EXPECT_EQ(hour_main_seconds(t, h, m, 32, nullptr, nullptr),
              hour_main_seconds(t, h, m, 32, empty, retry, nullptr, nullptr));
  }
}

// --------------------------------------------------- determinism property

TEST(FaultDeterminism, SameSeedSameReport) {
  const WorkTrace& t = shared_run().trace;
  ExecutionConfig cfg{intel_paragon(), 16, Strategy::DataParallel};
  cfg.faults = FaultPlan::make(seed_with_failure(16, 6, cocktail()), 16, 6,
                               cocktail());

  const RunReport a = simulate_execution(t, cfg);
  const RunReport b = simulate_execution(t, cfg);
  EXPECT_EQ(a.total_seconds, b.total_seconds);  // bit-identical
  EXPECT_EQ(a.ledger.total_seconds(), b.ledger.total_seconds());
  EXPECT_EQ(a.recovery.checkpoints, b.recovery.checkpoints);
  EXPECT_EQ(a.recovery.retransmissions, b.recovery.retransmissions);
  EXPECT_EQ(a.recovery.lost_work_s, b.recovery.lost_work_s);
  EXPECT_EQ(a.recovery.straggler_s, b.recovery.straggler_s);
  ASSERT_EQ(a.recovery.failures.size(), b.recovery.failures.size());
  for (std::size_t i = 0; i < a.recovery.failures.size(); ++i) {
    EXPECT_EQ(a.recovery.failures[i].node, b.recovery.failures[i].node);
    EXPECT_EQ(a.recovery.failures[i].lost_s, b.recovery.failures[i].lost_s);
  }
}

TEST(FaultDeterminism, PhysicsUnaffectedByFaultSimulation) {
  // Faults live purely in the virtual-time executor; the science outputs
  // of two identical model runs are bit-identical regardless.
  Dataset ds = test_basin_dataset();
  ModelOptions opts;
  opts.hours = 2;
  const ModelRunResult a = AirshedModel(ds, opts).run();
  const ModelRunResult b = AirshedModel(ds, opts).run();
  EXPECT_EQ(a.outputs.conc, b.outputs.conc);
  EXPECT_EQ(a.outputs.pm, b.outputs.pm);
}

// ------------------------------------------------------ recovery accounting

TEST(Recovery, LedgerDecomposesTotalExactly) {
  const WorkTrace& t = shared_run().trace;
  ExecutionConfig cfg{intel_paragon(), 16, Strategy::DataParallel};
  cfg.faults = FaultPlan::make(seed_with_failure(16, 6, cocktail()), 16, 6,
                               cocktail());
  const RunReport r = simulate_execution(t, cfg);

  ASSERT_FALSE(r.recovery.failures.empty());
  EXPECT_NEAR(r.ledger.total_seconds(), r.total_seconds,
              1e-9 * r.total_seconds);
  // The Recovery category is exactly the machine-readable breakdown.
  EXPECT_NEAR(r.ledger.category_seconds(PhaseCategory::Recovery),
              r.recovery.total_overhead_s(),
              1e-9 * r.recovery.total_overhead_s());
  EXPECT_GT(r.recovery.lost_work_s, 0.0);
  EXPECT_GT(r.recovery.checkpoint_s, 0.0);
  EXPECT_GT(r.recovery.relayout_s, 0.0);
  EXPECT_EQ(r.recovery.final_nodes,
            16 - static_cast<int>(r.recovery.failures.size()));
  for (const FailureEvent& e : r.recovery.failures) {
    EXPECT_GE(e.node, 0);
    EXPECT_LT(e.node, 16);
    EXPECT_GE(e.at_fraction, 0.0);
    EXPECT_LE(e.at_fraction, 1.0);
    EXPECT_GT(e.survivors, 0);
  }
}

TEST(Recovery, FaultsOnlyEverSlowTheRunDown) {
  const WorkTrace& t = shared_run().trace;
  ExecutionConfig plain{intel_paragon(), 16, Strategy::DataParallel};
  const double baseline = simulate_execution(t, plain).total_seconds;

  ExecutionConfig faulty = plain;
  faulty.faults = FaultPlan::make(seed_with_failure(16, 6, cocktail()), 16, 6,
                                  cocktail());
  EXPECT_GT(simulate_execution(t, faulty).total_seconds, baseline);

  FaultModelOptions stragglers_only;
  stragglers_only.slowdown_probability = 0.3;
  ExecutionConfig slow = plain;
  slow.faults = FaultPlan::make(9, 16, 6, stragglers_only);
  const RunReport r = simulate_execution(t, slow);
  EXPECT_GE(r.total_seconds, baseline);
  EXPECT_NEAR(r.recovery.total_overhead_s(), r.recovery.straggler_s, 1e-12);
}

TEST(Recovery, StragglersWorkUnderTaskParallelStrategy) {
  const WorkTrace& t = shared_run().trace;
  FaultModelOptions f;
  f.slowdown_probability = 0.3;
  f.message_drop_probability = 0.1;
  ExecutionConfig cfg{intel_paragon(), 16, Strategy::TaskAndDataParallel};
  cfg.faults = FaultPlan::make(21, 16, 6, f);
  const RunReport faulty = simulate_execution(t, cfg);

  ExecutionConfig plain = cfg;
  plain.faults = FaultPlan{};
  EXPECT_GE(faulty.total_seconds,
            simulate_execution(t, plain).total_seconds);
}

TEST(Recovery, YoungFormulaSanity) {
  // T* = sqrt(2 C M); overhead rate is C/T + T/(2M), minimized at T*.
  const double C = 10.0, M = 3600.0;
  const double topt = young_optimal_interval_s(C, M);
  EXPECT_NEAR(topt, std::sqrt(2.0 * C * M), 1e-12);
  const double at_opt = expected_overhead_rate(C, topt, M);
  EXPECT_LT(at_opt, expected_overhead_rate(C, 0.5 * topt, M));
  EXPECT_LT(at_opt, expected_overhead_rate(C, 2.0 * topt, M));
}

// ------------------------------------------------- checkpoint / restart

TEST(CheckpointRestart, ResumeReproducesUninterruptedRunBitForBit) {
  Dataset ds = test_basin_dataset();
  ModelOptions opts;
  opts.hours = 4;
  AirshedModel model(ds, opts);

  std::vector<CheckpointRecord> ckpts;
  const ModelRunResult full = model.run_with_checkpoints(
      [&](const CheckpointRecord& rec) { ckpts.push_back(rec); });
  ASSERT_EQ(ckpts.size(), 4u);
  EXPECT_EQ(ckpts.back().next_hour, 4);

  // "Crash" after hour 2, restart from its checkpoint, replay the rest.
  const ModelRunResult tail = model.resume(ckpts[1]);
  ASSERT_EQ(tail.trace.hours.size(), 2u);
  ASSERT_EQ(tail.outputs.hourly.size(), 2u);
  EXPECT_EQ(tail.outputs.conc, full.outputs.conc);  // bitwise equality
  EXPECT_EQ(tail.outputs.pm, full.outputs.pm);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(tail.outputs.hourly[i].max_surface_o3_ppm,
              full.outputs.hourly[i + 2].max_surface_o3_ppm);
    EXPECT_EQ(tail.trace.hours[i].steps.size(),
              full.trace.hours[i + 2].steps.size());
  }
}

TEST(CheckpointRestart, RecordRoundTripsThroughDisk) {
  Dataset ds = test_basin_dataset();
  ModelOptions opts;
  opts.hours = 2;
  AirshedModel model(ds, opts);
  std::vector<CheckpointRecord> ckpts;
  model.run_with_checkpoints(
      [&](const CheckpointRecord& rec) { ckpts.push_back(rec); });
  ASSERT_FALSE(ckpts.empty());
  EXPECT_GT(ckpts[0].payload_bytes(), 0u);

  const std::string path =
      (std::filesystem::temp_directory_path() / "airshed_fault_ckpt.txt")
          .string();
  ckpts[0].save(path);
  const CheckpointRecord loaded = CheckpointRecord::load(path);
  EXPECT_EQ(loaded, ckpts[0]);
  std::filesystem::remove(path);

  // A run resumed from the reloaded record still matches exactly.
  const ModelRunResult via_disk = model.resume(loaded);
  const ModelRunResult direct = model.resume(ckpts[0]);
  EXPECT_EQ(via_disk.outputs.conc, direct.outputs.conc);
}

TEST(CheckpointRestart, ResumeValidatesRecord) {
  Dataset ds = test_basin_dataset();
  ModelOptions opts;
  opts.hours = 2;
  AirshedModel model(ds, opts);
  std::vector<CheckpointRecord> ckpts;
  model.run_with_checkpoints(
      [&](const CheckpointRecord& rec) { ckpts.push_back(rec); });

  CheckpointRecord wrong_name = ckpts[0];
  wrong_name.dataset = "OTHER";
  EXPECT_THROW(model.resume(wrong_name), ConfigError);

  CheckpointRecord wrong_hour = ckpts[0];
  wrong_hour.next_hour = 99;
  EXPECT_THROW(model.resume(wrong_hour), ConfigError);

  CheckpointRecord wrong_shape = ckpts[0];
  wrong_shape.conc = ConcentrationField(1, 1, 1);
  EXPECT_THROW(model.resume(wrong_shape), ConfigError);
}

// ------------------------------------------------ degraded-mode coupling

TEST(Handshake, HealthyModuleConnectsImmediately) {
  const HandshakeResult r = attempt_handshake(true);
  EXPECT_TRUE(r.connected);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_DOUBLE_EQ(r.elapsed_s, 0.0);
}

TEST(Handshake, DeadModuleTimesOutThenGivesUp) {
  HandshakeOptions o;
  o.timeout_s = 1.0;
  o.max_retries = 3;
  o.backoff_base_s = 0.25;
  o.backoff_max_s = 2.0;
  const HandshakeResult r = attempt_handshake(false, o);
  EXPECT_FALSE(r.connected);
  EXPECT_EQ(r.attempts, 4);
  // 4 timeouts + backoffs 0.25, 0.5, 1.0 between attempts.
  EXPECT_NEAR(r.elapsed_s, 4.0 + 0.25 + 0.5 + 1.0, 1e-12);

  HandshakeOptions bad = o;
  bad.timeout_s = 0.0;
  EXPECT_THROW(attempt_handshake(false, bad), ConfigError);
}

TEST(DegradedMode, DeadPopExpModuleDegradesInsteadOfWedging) {
  const WorkTrace& t = shared_run().trace;
  PopExpExecutionConfig cfg;
  cfg.machine = intel_paragon();
  cfg.nodes = 16;
  cfg.coupling = PopExpCoupling::ForeignModule;
  cfg.raster_cells = 256;

  const RunReport healthy = simulate_airshed_popexp(t, cfg);
  EXPECT_FALSE(healthy.recovery.foreign_module_gave_up);

  cfg.module_dead_from_hour = 2;
  const RunReport degraded = simulate_airshed_popexp(t, cfg);
  EXPECT_TRUE(degraded.recovery.foreign_module_gave_up);
  EXPECT_TRUE(std::isfinite(degraded.total_seconds));
  EXPECT_GT(degraded.total_seconds, 0.0);
  // Dead hours compute no exposure; coupling is live-hour transfers plus
  // the one-time handshake give-up.
  EXPECT_LT(degraded.ledger.category_seconds(PhaseCategory::Exposure),
            healthy.ledger.category_seconds(PhaseCategory::Exposure));
  bool saw_giveup = false;
  for (const PhaseRecord& p : degraded.ledger.phases()) {
    if (p.name == "handshake give-up (dead module)") {
      saw_giveup = true;
      EXPECT_EQ(p.category, PhaseCategory::Coupling);
      EXPECT_NEAR(p.seconds,
                  attempt_handshake(false, cfg.handshake).elapsed_s, 1e-12);
    }
  }
  EXPECT_TRUE(saw_giveup);
  // Deterministic: same config, same report.
  EXPECT_EQ(degraded.total_seconds,
            simulate_airshed_popexp(t, cfg).total_seconds);
}

// ------------------------------------------------------------ validation

TEST(Validation, ExecutionConfigBoundaries) {
  const WorkTrace& t = shared_run().trace;
  ExecutionConfig cfg{intel_paragon(), 0, Strategy::DataParallel};
  EXPECT_THROW(simulate_execution(t, cfg), ConfigError);

  cfg.nodes = 16;
  cfg.machine.latency_per_message_s = -1.0;
  EXPECT_THROW(simulate_execution(t, cfg), ConfigError);

  cfg.machine = intel_paragon();
  cfg.machine.node_rate_flops = 0.0;
  EXPECT_THROW(simulate_execution(t, cfg), ConfigError);

  // A fault plan drawn for fewer nodes than the run uses is a config error.
  cfg.machine = intel_paragon();
  cfg.faults = FaultPlan::make(1, 8, 6, cocktail());
  EXPECT_THROW(simulate_execution(t, cfg), ConfigError);

  // Node-failure injection needs the data-parallel strategy.
  cfg.faults = FaultPlan::make(seed_with_failure(16, 6, cocktail()), 16, 6,
                               cocktail());
  cfg.strategy = Strategy::TaskAndDataParallel;
  EXPECT_THROW(simulate_execution(t, cfg), ConfigError);

  EXPECT_THROW(hour_main_seconds(t, 0, intel_paragon(), 0, nullptr, nullptr),
               ConfigError);
}

TEST(Validation, DatasetSpecBoundaries) {
  DatasetSpec spec = test_basin_spec();
  spec.layers = 0;
  EXPECT_THROW(build_dataset(spec), ConfigError);

  spec = test_basin_spec();
  spec.cities.clear();
  EXPECT_THROW(build_dataset(spec), ConfigError);

  spec = test_basin_spec();
  spec.target_points = 0;
  EXPECT_THROW(build_dataset(spec), ConfigError);

  spec = test_basin_spec();
  spec.name.clear();
  EXPECT_THROW(build_dataset(spec), ConfigError);

  spec = test_basin_spec();
  spec.base_nx = 0;
  EXPECT_THROW(build_dataset(spec), ConfigError);
}

// -------------------------------------------------- non-finite guards

TEST(NumericalGuards, SupgRejectsNonFiniteField) {
  Dataset ds = test_basin_dataset();
  SupgTransport supg(ds.mesh(), TransportOptions{});
  ConcentrationField conc = AirshedModel::initial_conditions(ds);
  conc(0, 0, 0) = std::numeric_limits<double>::quiet_NaN();
  std::vector<Point2> wind(ds.points(), Point2{10.0, 0.0});
  std::vector<double> background(kSpeciesCount, 0.01);
  try {
    supg.advance_layer(conc, 0, wind, 1.0, 0.5, background);
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("grid point"), std::string::npos) << msg;
    EXPECT_NE(msg.find("substep"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace airshed
