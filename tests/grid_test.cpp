// Tests for the multiscale quadtree grid, its conforming triangulation,
// and the uniform baseline grid.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "airshed/grid/multiscale.hpp"
#include "airshed/grid/trimesh.hpp"
#include "airshed/grid/uniform.hpp"
#include "airshed/util/error.hpp"

namespace airshed {
namespace {

BBox unit_domain() { return BBox{0.0, 0.0, 100.0, 100.0}; }

TEST(MultiscaleGrid, BaseGridHasExpectedLeaves) {
  MultiscaleGrid g(unit_domain(), 4, 3, 2);
  EXPECT_EQ(g.leaf_count(), 12u);
  EXPECT_TRUE(g.is_balanced());
  // Vertices: 5x4 corners + 12 centroids.
  EXPECT_EQ(g.vertex_count(), 20u + 12u);
}

TEST(MultiscaleGrid, RefineSplitsIntoFourChildren) {
  MultiscaleGrid g(unit_domain(), 2, 2, 3);
  g.refine(CellKey{0, 0, 0});
  EXPECT_EQ(g.leaf_count(), 7u);
  EXPECT_FALSE(g.is_leaf(CellKey{0, 0, 0}));
  EXPECT_TRUE(g.is_interior(CellKey{0, 0, 0}));
  for (int dj = 0; dj < 2; ++dj) {
    for (int di = 0; di < 2; ++di) {
      EXPECT_TRUE(g.is_leaf(CellKey{1, di, dj}));
    }
  }
  EXPECT_TRUE(g.is_balanced());
}

TEST(MultiscaleGrid, RefineRejectsNonLeafAndMaxLevel) {
  MultiscaleGrid g(unit_domain(), 2, 2, 1);
  g.refine(CellKey{0, 0, 0});
  EXPECT_THROW(g.refine(CellKey{0, 0, 0}), Error);   // not a leaf
  EXPECT_THROW(g.refine(CellKey{1, 0, 0}), Error);   // at max level
}

TEST(MultiscaleGrid, BalanceCascades) {
  // Refining the same corner cell twice must force the neighbors to split
  // so no leaf touches a leaf two levels finer.
  MultiscaleGrid g(unit_domain(), 4, 4, 4);
  g.refine(CellKey{0, 0, 0});
  g.refine(CellKey{1, 0, 0});
  g.refine(CellKey{2, 0, 0});
  EXPECT_TRUE(g.is_balanced());
}

TEST(MultiscaleGrid, CellBBoxPartitionsDomain) {
  MultiscaleGrid g(unit_domain(), 3, 3, 3);
  g.refine(CellKey{0, 1, 1});
  g.refine(CellKey{1, 2, 2});
  double area = 0.0;
  for (const CellKey& k : g.leaves()) area += g.cell_bbox(k).area();
  EXPECT_NEAR(area, unit_domain().area(), 1e-9);
}

TEST(MultiscaleGrid, RefineToTargetReachesVertexCount) {
  MultiscaleGrid g(unit_domain(), 4, 4, 4);
  auto priority = [](Point2 p) {
    const double dx = p.x - 50.0, dy = p.y - 50.0;
    return std::exp(-(dx * dx + dy * dy) / 800.0) + 0.01;
  };
  g.refine_to_target(priority, 300);
  EXPECT_GE(g.vertex_count(), 300u);
  EXPECT_LT(g.vertex_count(), 330u);  // lands close, not wildly past
  EXPECT_TRUE(g.is_balanced());
}

TEST(MultiscaleGrid, RefinementConcentratesWherePriorityIsHigh) {
  MultiscaleGrid g(unit_domain(), 4, 4, 4);
  auto priority = [](Point2 p) {
    const double dx = p.x - 25.0, dy = p.y - 25.0;
    return std::exp(-(dx * dx + dy * dy) / 200.0) + 0.001;
  };
  g.refine_to_target(priority, 250);
  // The finest cells must be near (25, 25).
  int max_level_seen = 0;
  for (const CellKey& k : g.leaves()) {
    max_level_seen = std::max(max_level_seen, k.level);
  }
  ASSERT_GT(max_level_seen, 0);
  for (const CellKey& k : g.leaves()) {
    if (k.level == max_level_seen) {
      const Point2 c = g.cell_bbox(k).center();
      EXPECT_LT(norm(c - Point2{25.0, 25.0}), 40.0)
          << "finest cell far from the priority peak at (" << c.x << ","
          << c.y << ")";
    }
  }
}

TEST(MultiscaleGrid, TriangulationIsConformingAndCCW) {
  MultiscaleGrid g(unit_domain(), 3, 3, 3);
  g.refine(CellKey{0, 1, 1});
  g.refine(CellKey{1, 2, 2});
  g.refine(CellKey{1, 3, 3});
  const TriMesh mesh = g.triangulate();  // TriMesh ctor validates CCW,
                                         // manifold edges, no orphans
  EXPECT_EQ(mesh.vertex_count(), g.vertex_count());
  EXPECT_NEAR(mesh.total_area(), unit_domain().area(), 1e-9);
}

TEST(MultiscaleGrid, TriangulationVertexCountMatchesPrediction) {
  MultiscaleGrid g(unit_domain(), 4, 4, 3);
  auto priority = [](Point2 p) { return p.x + p.y + 1.0; };
  g.refine_to_target(priority, 200);
  EXPECT_EQ(g.triangulate().vertex_count(), g.vertex_count());
}

class MultiscaleRefinementSweep : public ::testing::TestWithParam<int> {};

TEST_P(MultiscaleRefinementSweep, MeshInvariantsHoldAtAnyTarget) {
  const int target = GetParam();
  MultiscaleGrid g(unit_domain(), 4, 4, 4);
  auto priority = [](Point2 p) {
    return std::exp(-norm(p - Point2{60.0, 40.0}) / 15.0) + 0.02;
  };
  g.refine_to_target(priority, static_cast<std::size_t>(target));
  EXPECT_TRUE(g.is_balanced());
  const TriMesh mesh = g.triangulate();
  EXPECT_NEAR(mesh.total_area(), unit_domain().area(), 1e-8);
  // Dual (lumped) areas partition the domain too.
  double lumped = 0.0;
  for (double a : mesh.lumped_area()) lumped += a;
  EXPECT_NEAR(lumped, unit_domain().area(), 1e-8);
  // Euler characteristic of a disk-like planar triangulation: V - E + F = 1
  // (faces excluding the outer one). E = (3F + boundary) / 2.
  const double f = static_cast<double>(mesh.triangle_count());
  const double e =
      (3.0 * f + static_cast<double>(mesh.boundary_edge_count())) / 2.0;
  EXPECT_DOUBLE_EQ(static_cast<double>(mesh.vertex_count()) - e + f, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Targets, MultiscaleRefinementSweep,
                         ::testing::Values(40, 100, 250, 500, 900));

TEST(TriMesh, RejectsClockwiseTriangle) {
  std::vector<Point2> pts = {{0, 0}, {1, 0}, {0, 1}};
  std::vector<Triangle> tris = {Triangle{{0, 2, 1}}};  // clockwise
  EXPECT_THROW(TriMesh(pts, tris), ConfigError);
}

TEST(TriMesh, RejectsOutOfRangeIndex) {
  std::vector<Point2> pts = {{0, 0}, {1, 0}, {0, 1}};
  std::vector<Triangle> tris = {Triangle{{0, 1, 7}}};
  EXPECT_THROW(TriMesh(pts, tris), Error);
}

TEST(TriMesh, RejectsOrphanVertex) {
  std::vector<Point2> pts = {{0, 0}, {1, 0}, {0, 1}, {5, 5}};
  std::vector<Triangle> tris = {Triangle{{0, 1, 2}}};
  EXPECT_THROW(TriMesh(pts, tris), ConfigError);
}

TEST(TriMesh, ElementGeometryGradientsReproduceLinearField) {
  // For a P1 element, the basis gradients must reconstruct the gradient of
  // any linear function exactly.
  std::vector<Point2> pts = {{0, 0}, {2, 0}, {0, 3}};
  std::vector<Triangle> tris = {Triangle{{0, 1, 2}}};
  const TriMesh mesh(pts, tris);
  const ElementGeometry& g = mesh.element_geometry()[0];
  auto f = [](Point2 p) { return 3.0 * p.x - 2.0 * p.y + 1.0; };
  double gx = 0.0, gy = 0.0;
  for (int i = 0; i < 3; ++i) {
    gx += g.bx[i] * f(pts[i]);
    gy += g.by[i] * f(pts[i]);
  }
  EXPECT_NEAR(gx, 3.0, 1e-12);
  EXPECT_NEAR(gy, -2.0, 1e-12);
  EXPECT_NEAR(g.area, 3.0, 1e-12);
}

TEST(TriMesh, BoundaryDetection) {
  // A single square split into two triangles: all four vertices on boundary.
  std::vector<Point2> pts = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  std::vector<Triangle> tris = {Triangle{{0, 1, 2}}, Triangle{{0, 2, 3}}};
  const TriMesh mesh(pts, tris);
  for (std::size_t v = 0; v < 4; ++v) EXPECT_TRUE(mesh.boundary_vertex()[v]);
  EXPECT_EQ(mesh.boundary_edge_count(), 4u);
}

TEST(UniformGrid, GeometryAndIndexing) {
  UniformGrid g(BBox{0, 0, 10, 20}, 5, 4);
  EXPECT_DOUBLE_EQ(g.dx(), 2.0);
  EXPECT_DOUBLE_EQ(g.dy(), 5.0);
  EXPECT_EQ(g.cell_count(), 20u);
  EXPECT_EQ(g.index(3, 2), 2u * 5u + 3u);
  const Point2 c = g.center(0, 0);
  EXPECT_DOUBLE_EQ(c.x, 1.0);
  EXPECT_DOUBLE_EQ(c.y, 2.5);
  EXPECT_EQ(g.all_centers().size(), 20u);
}

TEST(UniformGrid, RejectsDegenerate) {
  EXPECT_THROW(UniformGrid(BBox{0, 0, 10, 10}, 1, 4), Error);
  EXPECT_THROW(UniformGrid(BBox{0, 0, 0, 10}, 4, 4), Error);
}

TEST(Geometry, SignedArea) {
  EXPECT_DOUBLE_EQ(signed_area({0, 0}, {1, 0}, {0, 1}), 0.5);
  EXPECT_DOUBLE_EQ(signed_area({0, 0}, {0, 1}, {1, 0}), -0.5);
}

}  // namespace
}  // namespace airshed
