// Tests for the vertical transport operator (implicit diffusion +
// deposition + emission) and the aerosol partitioning module.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "airshed/aerosol/aerosol.hpp"
#include "airshed/chem/species.hpp"
#include "airshed/met/meteorology.hpp"
#include "airshed/util/error.hpp"
#include "airshed/vert/vertical.hpp"

namespace airshed {
namespace {

constexpr int kLayers = 5;

VerticalTransport make_vert() {
  return VerticalTransport(Meteorology::layer_thickness_m(kLayers));
}

struct ColumnSetup {
  ConcentrationField conc{kSpeciesCount, kLayers, 1, 0.0};
  std::vector<double> kz = std::vector<double>(kLayers - 1, 25.0);
  std::vector<double> no_flux = std::vector<double>(kSpeciesCount, 0.0);
  std::vector<double> no_dep = std::vector<double>(kSpeciesCount, 0.0);
};

TEST(VerticalTransport, ConservesColumnBurdenWithoutSinks) {
  VerticalTransport vt = make_vert();
  ColumnSetup s;
  // Put all mass in the surface layer.
  s.conc(index_of(Species::CO), 0, 0) = 1.0;
  const double b0 = vt.column_burden(s.conc, index_of(Species::CO), 0);
  for (int i = 0; i < 30; ++i) {
    vt.advance_column(s.conc, 0, s.kz, s.no_flux, s.no_dep, {}, 5.0);
  }
  EXPECT_NEAR(vt.column_burden(s.conc, index_of(Species::CO), 0), b0,
              1e-9 * b0);
}

TEST(VerticalTransport, DiffusionApproachesWellMixedProfile) {
  VerticalTransport vt = make_vert();
  ColumnSetup s;
  s.conc(index_of(Species::CO), 0, 0) = 1.0;
  const double burden = vt.column_burden(s.conc, index_of(Species::CO), 0);
  double total_dz = 0.0;
  for (double dz : vt.layer_thickness_m()) total_dz += dz;
  const double mixed = burden / total_dz;
  // Long integration with strong mixing.
  std::vector<double> strong_kz(kLayers - 1, 80.0);
  for (int i = 0; i < 600; ++i) {
    vt.advance_column(s.conc, 0, strong_kz, s.no_flux, s.no_dep, {}, 10.0);
  }
  for (int k = 0; k < kLayers; ++k) {
    EXPECT_NEAR(s.conc(index_of(Species::CO), k, 0), mixed, 0.05 * mixed)
        << "layer " << k;
  }
}

TEST(VerticalTransport, DepositionRemovesMassMonotonically) {
  VerticalTransport vt = make_vert();
  ColumnSetup s;
  for (int k = 0; k < kLayers; ++k) s.conc(index_of(Species::O3), k, 0) = 0.05;
  std::vector<double> dep(kSpeciesCount, 0.0);
  dep[index_of(Species::O3)] = 0.005;  // m/s
  double prev = vt.column_burden(s.conc, index_of(Species::O3), 0);
  for (int i = 0; i < 10; ++i) {
    vt.advance_column(s.conc, 0, s.kz, s.no_flux, dep, {}, 5.0);
    const double now = vt.column_burden(s.conc, index_of(Species::O3), 0);
    EXPECT_LT(now, prev);
    prev = now;
  }
}

TEST(VerticalTransport, SurfaceEmissionAddsExpectedMass) {
  VerticalTransport vt = make_vert();
  ColumnSetup s;
  std::vector<double> flux(kSpeciesCount, 0.0);
  flux[index_of(Species::NO)] = 2.0e-3;  // ppm*m/min
  const double dt = 5.0;                 // minutes
  const int steps = 12;
  for (int i = 0; i < steps; ++i) {
    vt.advance_column(s.conc, 0, s.kz, flux, s.no_dep, {}, dt);
  }
  const double burden = vt.column_burden(s.conc, index_of(Species::NO), 0);
  EXPECT_NEAR(burden, 2.0e-3 * dt * steps, 1e-9);
}

TEST(VerticalTransport, ElevatedInjectionLandsInRequestedLayer) {
  VerticalTransport vt = make_vert();
  ColumnSetup s;
  std::vector<double> zero_kz(kLayers - 1, 0.0);  // no mixing: stays put
  std::vector<double> elevated(
      static_cast<std::size_t>(kSpeciesCount) * kLayers, 0.0);
  elevated[static_cast<std::size_t>(index_of(Species::SO2)) * kLayers + 2] =
      1.0e-2;
  vt.advance_column(s.conc, 0, zero_kz, s.no_flux, s.no_dep, elevated, 10.0);
  EXPECT_GT(s.conc(index_of(Species::SO2), 2, 0), 0.0);
  EXPECT_EQ(s.conc(index_of(Species::SO2), 0, 0), 0.0);
  EXPECT_EQ(s.conc(index_of(Species::SO2), 4, 0), 0.0);
}

TEST(VerticalTransport, RejectsBadShapes) {
  VerticalTransport vt = make_vert();
  ColumnSetup s;
  std::vector<double> bad_kz(2, 10.0);
  EXPECT_THROW(
      vt.advance_column(s.conc, 0, bad_kz, s.no_flux, s.no_dep, {}, 1.0),
      Error);
  EXPECT_THROW(
      vt.advance_column(s.conc, 99, s.kz, s.no_flux, s.no_dep, {}, 1.0),
      Error);
}

TEST(VerticalTransport, LayerThicknessesGrowWithHeight) {
  const std::vector<double> dz = Meteorology::layer_thickness_m(5);
  ASSERT_EQ(dz.size(), 5u);
  for (std::size_t k = 1; k < dz.size(); ++k) EXPECT_GT(dz[k], dz[k - 1]);
}

// ----------------------------------------------------------------- aerosol

TEST(Aerosol, KpIncreasesWithTemperature) {
  const double k_cold = AerosolModule::kp_nh4no3_ppm2(278.0);
  const double k_warm = AerosolModule::kp_nh4no3_ppm2(308.0);
  EXPECT_GT(k_warm, k_cold);
  // At 298 K the dissociation constant is tens of ppb^2.
  const double k298_ppb2 = AerosolModule::kp_nh4no3_ppm2(298.0) * 1e6;
  EXPECT_GT(k298_ppb2, 5.0);
  EXPECT_LT(k298_ppb2, 500.0);
}

TEST(Aerosol, CondensesWhenProductExceedsKp) {
  AerosolModule aero;
  double nh3 = 0.02, hno3 = 0.02, sulf = 0.0;
  double p_no3 = 0.0, p_nh4 = 0.0, p_so4 = 0.0;
  const double moved =
      aero.equilibrate_cell(nh3, hno3, sulf, p_no3, p_nh4, p_so4, 285.0);
  EXPECT_GT(moved, 0.0);
  EXPECT_GT(p_no3, 0.0);
  EXPECT_DOUBLE_EQ(p_no3, p_nh4);
  // Gas product lands on the equilibrium line.
  EXPECT_NEAR(nh3 * hno3, AerosolModule::kp_nh4no3_ppm2(285.0),
              1e-6 * AerosolModule::kp_nh4no3_ppm2(285.0));
}

TEST(Aerosol, EvaporatesWhenProductBelowKp) {
  AerosolModule aero;
  double nh3 = 1e-6, hno3 = 1e-6, sulf = 0.0;
  double p_no3 = 5e-3, p_nh4 = 5e-3, p_so4 = 0.0;
  const double moved =
      aero.equilibrate_cell(nh3, hno3, sulf, p_no3, p_nh4, p_so4, 305.0);
  EXPECT_LT(moved, 0.0);
  EXPECT_LT(p_no3, 5e-3);
  EXPECT_GT(nh3, 1e-6);
}

TEST(Aerosol, SulfateCondensesIrreversiblyAndTakesAmmonium) {
  AerosolModule aero;
  double nh3 = 0.01, hno3 = 0.0, sulf = 2e-3;
  double p_no3 = 0.0, p_nh4 = 0.0, p_so4 = 0.0;
  aero.equilibrate_cell(nh3, hno3, sulf, p_no3, p_nh4, p_so4, 298.0);
  EXPECT_DOUBLE_EQ(sulf, 0.0);
  EXPECT_DOUBLE_EQ(p_so4, 2e-3);
  EXPECT_NEAR(p_nh4, 4e-3, 1e-12);   // 2 NH3 per H2SO4
  EXPECT_NEAR(nh3, 0.01 - 4e-3, 1e-12);
}

TEST(Aerosol, CellConservesTotalNitrogenAndSulfur) {
  AerosolModule aero;
  double nh3 = 0.015, hno3 = 0.012, sulf = 1e-3;
  double p_no3 = 2e-3, p_nh4 = 3e-3, p_so4 = 1e-4;
  const double n0 = nh3 + hno3 + p_no3 + p_nh4;
  const double s0 = sulf + p_so4;
  aero.equilibrate_cell(nh3, hno3, sulf, p_no3, p_nh4, p_so4, 290.0);
  EXPECT_NEAR(nh3 + hno3 + p_no3 + p_nh4, n0, 1e-12);
  EXPECT_NEAR(sulf + p_so4, s0, 1e-15);
  EXPECT_GE(nh3, 0.0);
  EXPECT_GE(hno3, 0.0);
  EXPECT_GE(p_no3, 0.0);
}

TEST(Aerosol, EquilibrateFieldTouchesEveryCell) {
  AerosolModule aero;
  const std::size_t layers = 3, nodes = 7;
  ConcentrationField gas(kSpeciesCount, layers, nodes, 0.0);
  Array3<double> pm(kPmComponents, layers, nodes, 0.0);
  for (std::size_t k = 0; k < layers; ++k) {
    for (std::size_t n = 0; n < nodes; ++n) {
      gas(index_of(Species::NH3), k, n) = 0.02;
      gas(index_of(Species::HNO3), k, n) = 0.02;
    }
  }
  std::vector<double> temps = {285.0, 284.0, 283.0};
  const AerosolResult r = aero.equilibrate(gas, pm, temps);
  EXPECT_EQ(r.cells, layers * nodes);
  EXPECT_GT(r.work_flops, 0.0);
  for (std::size_t k = 0; k < layers; ++k) {
    for (std::size_t n = 0; n < nodes; ++n) {
      EXPECT_GT(pm(static_cast<std::size_t>(PmComponent::Nitrate), k, n), 0.0);
    }
  }
}

TEST(Aerosol, EquilibrateRejectsShapeMismatch) {
  AerosolModule aero;
  ConcentrationField gas(kSpeciesCount, 3, 7, 0.0);
  Array3<double> pm(kPmComponents, 2, 7, 0.0);
  std::vector<double> temps = {285.0, 284.0, 283.0};
  EXPECT_THROW(aero.equilibrate(gas, pm, temps), Error);
}

}  // namespace
}  // namespace airshed
