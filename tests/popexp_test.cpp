// Tests for the PopExp population exposure model and its native/foreign
// couplings with the Airshed pipeline.
#include <gtest/gtest.h>

#include "airshed/core/model.hpp"
#include "airshed/io/dataset.hpp"
#include "airshed/popexp/popexp.hpp"
#include "airshed/util/error.hpp"

namespace airshed {
namespace {

const Dataset& shared_dataset() {
  static const Dataset ds = test_basin_dataset();
  return ds;
}

const ModelRunResult& shared_run() {
  static const ModelRunResult run = [] {
    ModelOptions opts;
    opts.hours = 2;
    return AirshedModel(shared_dataset(), opts).run();
  }();
  return run;
}

PopulationRaster make_raster(double people = 1e6) {
  const Dataset& ds = shared_dataset();
  return PopulationRaster::from_density(
      ds.emissions.domain(), 16, 16,
      [&](Point2 p) { return ds.emissions.urban_density(p) + 0.01; }, people);
}

TEST(PopulationRaster, NormalizesToTotalPopulation) {
  const PopulationRaster r = make_raster(2.5e6);
  EXPECT_NEAR(r.total_population(), 2.5e6, 1.0);
  for (double p : r.population) EXPECT_GE(p, 0.0);
}

TEST(PopulationRaster, ConcentratesInCities) {
  const PopulationRaster r = make_raster();
  // The test dataset has one city at (40, 40) in an 80x80 domain.
  const std::size_t urban = r.grid.index(8, 8);
  const std::size_t rural = r.grid.index(0, 15);
  EXPECT_GT(r.population[urban], 5.0 * r.population[rural]);
}

TEST(PopulationRaster, RejectsZeroPeople)
{
  const Dataset& ds = shared_dataset();
  EXPECT_THROW(PopulationRaster::from_density(
                   ds.emissions.domain(), 8, 8,
                   [](Point2) { return 1.0; }, 0.0),
               Error);
}

TEST(ExposureModel, AccumulatesDoseFromConcentrations) {
  ExposureModel model(make_raster(), shared_dataset().mesh());
  const ExposureResult r =
      model.accumulate_hour(shared_run().outputs.conc);
  EXPECT_GT(r.person_ppm_hours_o3, 0.0);
  EXPECT_GT(r.person_ppm_hours_no2, 0.0);
  EXPECT_GT(r.max_cell_o3_ppm, 0.0);
  EXPECT_GT(r.work_flops, 0.0);
  // Dose bounded by population x max concentration.
  EXPECT_LE(r.person_ppm_hours_o3, 1e6 * r.max_cell_o3_ppm * 1.0001);
}

TEST(ExposureModel, DoseScalesWithPopulation) {
  ExposureModel small(make_raster(1e5), shared_dataset().mesh());
  ExposureModel large(make_raster(1e6), shared_dataset().mesh());
  const auto& conc = shared_run().outputs.conc;
  const double d_small = small.accumulate_hour(conc).person_ppm_hours_o3;
  const double d_large = large.accumulate_hour(conc).person_ppm_hours_o3;
  EXPECT_NEAR(d_large / d_small, 10.0, 1e-6);
}

TEST(ExposureModel, CumulativeDoseGrowsHourByHour) {
  ExposureModel model(make_raster(), shared_dataset().mesh());
  const auto& conc = shared_run().outputs.conc;
  model.accumulate_hour(conc);
  double after1 = 0.0;
  for (double d : model.cumulative_o3_dose()) after1 += d;
  model.accumulate_hour(conc);
  double after2 = 0.0;
  for (double d : model.cumulative_o3_dose()) after2 += d;
  EXPECT_NEAR(after2, 2.0 * after1, 1e-9 * after2);
}

// ---------------------------------------------------------- coupled runs

TEST(PopExpPipeline, AllocationReservesAllStages) {
  const PopExpAllocation a = allocate_popexp_nodes(32);
  EXPECT_EQ(a.input_nodes + a.main_nodes + a.output_nodes + a.popexp_nodes,
            32);
  EXPECT_GE(a.popexp_nodes, 1);
  EXPECT_GE(a.main_nodes, 1);
  EXPECT_THROW(allocate_popexp_nodes(3), Error);
}

PopExpExecutionConfig base_config(PopExpCoupling coupling, int nodes) {
  PopExpExecutionConfig cfg;
  cfg.machine = intel_paragon();
  cfg.nodes = nodes;
  cfg.coupling = coupling;
  cfg.raster_cells = 256;
  return cfg;
}

TEST(PopExpPipeline, ForeignModuleAddsSmallFixedOverhead) {
  // The Fig 13 claim, end to end: the foreign-module version is slower by
  // a fixed, relatively small amount.
  const WorkTrace& t = shared_run().trace;
  for (int nodes : {8, 16, 32, 64}) {
    const RunReport native = simulate_airshed_popexp(
        t, base_config(PopExpCoupling::NativeTask, nodes));
    const RunReport foreign = simulate_airshed_popexp(
        t, base_config(PopExpCoupling::ForeignModule, nodes));
    EXPECT_GE(foreign.total_seconds, native.total_seconds) << nodes;
    EXPECT_LT(foreign.total_seconds, native.total_seconds * 1.15)
        << "overhead must not significantly impact overall performance";
  }
}

TEST(PopExpPipeline, CouplingChargesAppearInLedger) {
  const WorkTrace& t = shared_run().trace;
  const RunReport r = simulate_airshed_popexp(
      t, base_config(PopExpCoupling::ForeignModule, 16));
  EXPECT_GT(r.ledger.category_seconds(PhaseCategory::Coupling), 0.0);
  EXPECT_GT(r.ledger.category_seconds(PhaseCategory::Exposure), 0.0);
  EXPECT_EQ(r.strategy, Strategy::TaskAndDataParallel);
}

TEST(PopExpPipeline, ScalesWithNodes) {
  const WorkTrace& t = shared_run().trace;
  const double t8 = simulate_airshed_popexp(
                        t, base_config(PopExpCoupling::NativeTask, 8))
                        .total_seconds;
  const double t64 = simulate_airshed_popexp(
                         t, base_config(PopExpCoupling::NativeTask, 64))
                         .total_seconds;
  EXPECT_LT(t64, t8);
}

TEST(PopExpPipeline, RejectsEmptyRaster) {
  PopExpExecutionConfig cfg = base_config(PopExpCoupling::NativeTask, 8);
  cfg.raster_cells = 0;
  EXPECT_THROW(simulate_airshed_popexp(shared_run().trace, cfg), Error);
}

TEST(PopExpCouplingNames, ToString) {
  EXPECT_EQ(to_string(PopExpCoupling::NativeTask), "native task");
  EXPECT_EQ(to_string(PopExpCoupling::ForeignModule), "foreign module");
}

}  // namespace
}  // namespace airshed
