// Tests for the machine models and the §4 performance model — including
// the Fig 6 property: the closed-form predictions track the traffic the
// redistribution engine actually generates.
#include <gtest/gtest.h>

#include <tuple>

#include "airshed/dist/airshed_layouts.hpp"
#include "airshed/machine/machine.hpp"
#include "airshed/perf/model.hpp"
#include "airshed/util/error.hpp"
#include "airshed/util/stats.hpp"

namespace airshed {
namespace {

TEST(Machine, PresetsMatchPaperRatios) {
  const MachineModel paragon = intel_paragon();
  const MachineModel t3d = cray_t3d();
  const MachineModel t3e = cray_t3e();
  // §3: T3D just under 2x the Paragon; T3E about 10x.
  const double r_t3d = t3d.node_rate_flops / paragon.node_rate_flops;
  const double r_t3e = t3e.node_rate_flops / paragon.node_rate_flops;
  EXPECT_GT(r_t3d, 1.5);
  EXPECT_LT(r_t3d, 2.0);
  EXPECT_GT(r_t3e, 8.0);
  EXPECT_LT(r_t3e, 12.0);
}

TEST(Machine, T3eParametersArePublishedValues) {
  const MachineModel m = cray_t3e();
  EXPECT_DOUBLE_EQ(m.latency_per_message_s, 5.2e-5);
  EXPECT_DOUBLE_EQ(m.cost_per_byte_s, 2.47e-8);
  EXPECT_DOUBLE_EQ(m.copy_per_byte_s, 2.04e-8);
  EXPECT_EQ(m.word_size, 8u);
}

TEST(Machine, LookupByName) {
  EXPECT_EQ(machine_by_name("t3e").name, "Cray T3E");
  EXPECT_EQ(machine_by_name("PARAGON").name, "Intel Paragon XP/S");
  EXPECT_EQ(machine_by_name("Cray T3D").name, "Cray T3D");
  EXPECT_THROW(machine_by_name("connection machine"), ConfigError);
}

TEST(Machine, CommTimeIsEquationTwo) {
  const MachineModel m = cray_t3e();
  EXPECT_DOUBLE_EQ(m.comm_time(2.0, 1e6, 1e5),
                   2.0 * 5.2e-5 + 1e6 * 2.47e-8 + 1e5 * 2.04e-8);
}

// ------------------------------------------------------ compute predictor

TEST(PerfModel, ComputeTimeDividesByUsefulParallelism) {
  const MachineModel m = cray_t3e();
  const double seq = 1e9;
  // 5 layers: no speedup past 5 nodes.
  const double t4 = predict_compute_seconds(seq, 5, m, 4);
  const double t8 = predict_compute_seconds(seq, 5, m, 8);
  const double t128 = predict_compute_seconds(seq, 5, m, 128);
  EXPECT_GT(t4, t8);
  EXPECT_DOUBLE_EQ(t8, t128);
  EXPECT_DOUBLE_EQ(t8, m.compute_time(seq / 5.0));
}

TEST(PerfModel, ComputeTimeUsesCeilBlocks) {
  const MachineModel m = cray_t3e();
  // 5 units over 4 nodes: one node holds 2 units -> time = 2/5 sequential.
  const double t = predict_compute_seconds(1e9, 5, m, 4);
  EXPECT_DOUBLE_EQ(t, m.compute_time(1e9 * 2.0 / 5.0));
}

TEST(PerfModel, HighParallelismScalesLinearly) {
  const MachineModel m = cray_t3e();
  const double t4 = predict_compute_seconds(1e9, 700, m, 4);
  const double t8 = predict_compute_seconds(1e9, 700, m, 8);
  EXPECT_NEAR(t4 / t8, 2.0, 0.05);
}

// ---------------------------------------------- comm predictions vs engine

class PredictedVsMeasuredSweep : public ::testing::TestWithParam<int> {};

TEST_P(PredictedVsMeasuredSweep, ClosedFormTracksEngine) {
  // The Fig 6 property: the paper's equations and the executed message
  // sets agree closely (not exactly — the paper's own figures show small
  // differences).
  const int p = GetParam();
  const MachineModel m = cray_t3e();
  const std::size_t S = 35, L = 5, N = 700;
  const MainLoopCommPlan plan = MainLoopCommPlan::plan(S, L, N, p, m.word_size);

  const double meas_r2t = plan.repl_to_trans.phase_seconds(m);
  const double pred_r2t = predict_repl_to_trans_seconds(m, S, L, N, p);
  EXPECT_LT(relative_error(meas_r2t, pred_r2t), 0.05) << "D_Repl->D_Trans";

  const double meas_t2c = plan.trans_to_chem.phase_seconds(m);
  const double pred_t2c = predict_trans_to_chem_seconds(m, S, L, N, p);
  EXPECT_LT(relative_error(meas_t2c, pred_t2c), 0.25) << "D_Trans->D_Chem";

  const double meas_c2r = plan.chem_to_repl.phase_seconds(m);
  const double pred_c2r = predict_chem_to_repl_seconds(m, S, L, N, p);
  EXPECT_LT(relative_error(meas_c2r, pred_c2r), 0.25) << "D_Chem->D_Repl";
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, PredictedVsMeasuredSweep,
                         ::testing::Values(4, 8, 16, 32, 64, 128));

TEST(PerfModel, ReplToTransDropsThenFlattens) {
  // The Fig 5 shape: cost halves from 4 to 8 nodes (2 layers -> 1 layer
  // per node for L=5) then stays constant.
  const MachineModel m = cray_t3e();
  const double t4 = predict_repl_to_trans_seconds(m, 35, 5, 700, 4);
  const double t8 = predict_repl_to_trans_seconds(m, 35, 5, 700, 8);
  const double t64 = predict_repl_to_trans_seconds(m, 35, 5, 700, 64);
  EXPECT_NEAR(t4 / t8, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(t8, t64);
}

TEST(PerfModel, TransToChemGrowsWithLatencyBeyond8) {
  // The Fig 5 shape: big drop 4 -> 8 (slab halves), then slow growth from
  // the latency term L * P.
  const MachineModel m = cray_t3e();
  const double t4 = predict_trans_to_chem_seconds(m, 35, 5, 700, 4);
  const double t8 = predict_trans_to_chem_seconds(m, 35, 5, 700, 8);
  const double t64 = predict_trans_to_chem_seconds(m, 35, 5, 700, 64);
  const double t128 = predict_trans_to_chem_seconds(m, 35, 5, 700, 128);
  EXPECT_GT(t4, t8);
  EXPECT_GT(t64, t8);
  EXPECT_NEAR(t128 - t64, m.latency_per_message_s * 64, 1e-12);
}

TEST(PerfModel, ChemToReplIsTheMostExpensiveStep) {
  // Fig 5: D_Chem -> D_Repl dominates (every node receives the full
  // array).
  const MachineModel m = cray_t3e();
  for (int p : {4, 8, 16, 32, 64, 128}) {
    const double c2r = predict_chem_to_repl_seconds(m, 35, 5, 700, p);
    EXPECT_GT(c2r, predict_repl_to_trans_seconds(m, 35, 5, 700, p));
    EXPECT_GT(c2r, predict_trans_to_chem_seconds(m, 35, 5, 700, p));
  }
}

// ------------------------------------------------------- parameter fitting

TEST(PerfModel, EstimateRecoversMachineParameters) {
  // §4.3: the L/G/H parameters can be estimated from measurements on small
  // node counts. Generate exact observations from the T3E model across the
  // engine's redistribution phases and verify the fit recovers them.
  const MachineModel m = cray_t3e();
  std::vector<CommObservation> obs;
  for (int p : {2, 3, 4, 6, 8}) {
    const MainLoopCommPlan plan =
        MainLoopCommPlan::plan(35, 5, 700, p, m.word_size);
    for (const RedistributionStats* st :
         {&plan.repl_to_trans, &plan.trans_to_chem, &plan.chem_to_repl}) {
      // Find the bottleneck node and record its traffic and time.
      double worst = -1.0;
      NodeTraffic worst_t;
      for (const NodeTraffic& t : st->traffic) {
        const double s = node_comm_time(m, t);
        if (s > worst) {
          worst = s;
          worst_t = t;
        }
      }
      obs.push_back({worst_t.messages_sent + worst_t.messages_received,
                     std::max(worst_t.bytes_sent, worst_t.bytes_received),
                     worst_t.bytes_copied, worst});
    }
  }
  const CommParams fit = estimate_comm_params(obs);
  EXPECT_LT(relative_error(fit.latency_per_message_s, 5.2e-5), 0.05);
  EXPECT_LT(relative_error(fit.cost_per_byte_s, 2.47e-8), 0.05);
  EXPECT_LT(relative_error(fit.copy_per_byte_s, 2.04e-8), 0.05);
}

TEST(PerfModel, EstimateNeedsThreeObservations) {
  std::vector<CommObservation> obs(2);
  EXPECT_THROW(estimate_comm_params(obs), Error);
}

TEST(PerfModel, PredictRunComposesPhases) {
  AppWorkSummary w;
  w.species = 35;
  w.layers = 5;
  w.points = 700;
  w.hours = 2;
  w.steps = 30;
  w.io_work = 1e8;
  w.transport_work = 1e9;
  w.chemistry_work = 1e10;
  w.aerosol_work = 1e6;
  const MachineModel m = cray_t3e();
  const AppPrediction p = predict_run(w, m, 16);
  EXPECT_DOUBLE_EQ(p.total_s, p.io_s + p.transport_s + p.chemistry_s +
                                  p.aerosol_s + p.comm_s);
  EXPECT_DOUBLE_EQ(p.io_s, m.compute_time(1e8));
  EXPECT_DOUBLE_EQ(p.transport_s, m.compute_time(1e9 / 5.0));
  EXPECT_DOUBLE_EQ(p.chemistry_s, m.compute_time(1e10 * 44.0 / 700.0));
  EXPECT_GT(p.comm_s, 0.0);
}

}  // namespace
}  // namespace airshed
