// Tests for the host-parallel execution engine: worker-pool mechanics,
// bit-identical model results and executor reports at every thread count
// (with and without an injected fault plan), and the rate-constant cache.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "airshed/core/executor.hpp"
#include "airshed/core/model.hpp"
#include "airshed/core/uniform_model.hpp"
#include "airshed/fault/fault_plan.hpp"
#include "airshed/io/dataset.hpp"
#include "airshed/par/pool.hpp"
#include "airshed/util/hash.hpp"

namespace airshed {
namespace {

// ------------------------------------------------------------ WorkerPool

TEST(WorkerPool, ResolvesExplicitRequestFirst) {
  EXPECT_EQ(par::resolve_threads(3), 3);
  EXPECT_GE(par::resolve_threads(0), 1);
  EXPECT_GE(par::hardware_threads(), 1);
}

TEST(WorkerPool, ForEachCoversEveryIndexExactlyOnce) {
  par::WorkerPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::vector<std::atomic<int>> hits(101);
  pool.for_each(hits.size(), [&](int, std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, BlocksAreContiguousAscendingAndFixed) {
  par::WorkerPool pool(3);
  std::vector<std::pair<std::size_t, std::size_t>> blocks(3, {0, 0});
  pool.for_blocks(10, [&](int t, std::size_t begin, std::size_t end) {
    blocks[static_cast<std::size_t>(t)] = {begin, end};
  });
  // [0,n) split into 3 contiguous blocks owned by thread index.
  EXPECT_EQ(blocks[0].first, 0u);
  EXPECT_EQ(blocks[0].second, blocks[1].first);
  EXPECT_EQ(blocks[1].second, blocks[2].first);
  EXPECT_EQ(blocks[2].second, 10u);
}

TEST(WorkerPool, EmptyRangeIsANoOp) {
  par::WorkerPool pool(4);
  int calls = 0;
  pool.for_each(0, [&](int, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(WorkerPool, RethrowsLowestIndexException) {
  par::WorkerPool pool(4);
  for (int rep = 0; rep < 10; ++rep) {
    try {
      pool.for_each(100, [&](int, std::size_t i) {
        if (i == 37 || i == 80) {
          throw std::runtime_error("boom at " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 37");
    }
  }
}

TEST(WorkerPool, PoolIsReusableAfterException) {
  par::WorkerPool pool(2);
  EXPECT_THROW(pool.for_each(4, [](int, std::size_t) {
    throw std::runtime_error("x");
  }),
               std::runtime_error);
  int count = 0;
  std::mutex mu;
  pool.for_each(8, [&](int, std::size_t) {
    std::lock_guard<std::mutex> lock(mu);
    ++count;
  });
  EXPECT_EQ(count, 8);
}

TEST(WorkerPool, BusySecondsTracksEveryThread) {
  par::WorkerPool pool(2);
  EXPECT_EQ(pool.busy_seconds().size(), 2u);
  std::atomic<double> sink{0.0};
  pool.for_each(64, [&](int, std::size_t) {
    double x = 0.0;
    for (int i = 0; i < 1000; ++i) x += 1e-6;
    sink.store(x, std::memory_order_relaxed);
  });
  EXPECT_GT(sink.load(), 0.0);
  const auto busy = pool.busy_seconds();
  EXPECT_GE(busy[0], 0.0);
  pool.reset_busy();
  for (double b : pool.busy_seconds()) EXPECT_EQ(b, 0.0);
}

TEST(PerThread, GivesEachThreadItsOwnInstance) {
  par::PerThread<std::vector<int>> scratch(3, [] {
    return std::vector<int>{1, 2, 3};
  });
  EXPECT_EQ(scratch.size(), 3);
  scratch[1].push_back(4);
  EXPECT_EQ(scratch[0].size(), 3u);
  EXPECT_EQ(scratch[1].size(), 4u);
}

// -------------------------------------------------- model determinism

ModelRunResult run_model(int host_threads, int hours = 3) {
  Dataset ds = test_basin_dataset();
  ModelOptions opts;
  opts.hours = hours;
  opts.host_threads = host_threads;
  opts.oversubscribe = true;  // keep real multi-thread coverage on small hosts
  return AirshedModel(ds, opts).run();
}

void expect_identical(const ModelRunResult& a, const ModelRunResult& b) {
  EXPECT_EQ(a.outputs.conc, b.outputs.conc);
  EXPECT_EQ(a.outputs.pm, b.outputs.pm);
  ASSERT_EQ(a.outputs.hourly.size(), b.outputs.hourly.size());
  for (std::size_t h = 0; h < a.outputs.hourly.size(); ++h) {
    EXPECT_EQ(a.outputs.hourly[h].max_surface_o3_ppm,
              b.outputs.hourly[h].max_surface_o3_ppm);
    EXPECT_EQ(a.outputs.hourly[h].total_pm_nitrate,
              b.outputs.hourly[h].total_pm_nitrate);
  }
  ASSERT_EQ(a.trace.hours.size(), b.trace.hours.size());
  for (std::size_t h = 0; h < a.trace.hours.size(); ++h) {
    const HourTrace& ha = a.trace.hours[h];
    const HourTrace& hb = b.trace.hours[h];
    ASSERT_EQ(ha.steps.size(), hb.steps.size());
    for (std::size_t j = 0; j < ha.steps.size(); ++j) {
      EXPECT_EQ(ha.steps[j].transport1_layer_work,
                hb.steps[j].transport1_layer_work);
      EXPECT_EQ(ha.steps[j].transport2_layer_work,
                hb.steps[j].transport2_layer_work);
      EXPECT_EQ(ha.steps[j].chem_column_work, hb.steps[j].chem_column_work);
      EXPECT_EQ(ha.steps[j].aerosol_work, hb.steps[j].aerosol_work);
    }
  }
}

TEST(HostParallelModel, BitIdenticalAcrossThreadCounts) {
  const ModelRunResult base = run_model(1);
  expect_identical(base, run_model(2));
  expect_identical(base, run_model(8));
}

TEST(HostParallelModel, UniformModelBitIdenticalAcrossThreadCounts) {
  const UniformDataset ds = build_uniform_dataset(test_basin_spec(), 8, 8);
  auto run = [&](int threads) {
    ModelOptions opts;
    opts.hours = 2;
    opts.host_threads = threads;
    opts.oversubscribe = true;
    return UniformAirshedModel(ds, opts).run();
  };
  const ModelRunResult base = run(1);
  expect_identical(base, run(2));
  expect_identical(base, run(8));
}

TEST(HostParallelModel, ProfileReportsResolvedThreads) {
  Dataset ds = test_basin_dataset();
  HostProfile prof;
  ModelOptions opts;
  opts.hours = 1;
  opts.host_threads = 2;
  opts.oversubscribe = true;  // the default caps at the core count
  opts.profile = &prof;
  AirshedModel(ds, opts).run();
  EXPECT_EQ(prof.threads, 2);
  EXPECT_EQ(prof.thread_busy_s.size(), 2u);
}

// ----------------------------------------------- executor determinism

const WorkTrace& shared_trace() {
  static const WorkTrace trace = run_model(1, 6).trace;
  return trace;
}

void expect_identical_reports(const RunReport& a, const RunReport& b) {
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  const auto pa = a.ledger.phases();
  const auto pb = b.ledger.phases();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].name, pb[i].name);
    EXPECT_EQ(pa[i].seconds, pb[i].seconds);
    EXPECT_EQ(pa[i].count, pb[i].count);
  }
  EXPECT_EQ(a.comm.repl_to_trans_s, b.comm.repl_to_trans_s);
  EXPECT_EQ(a.comm.trans_to_chem_s, b.comm.trans_to_chem_s);
  EXPECT_EQ(a.comm.chem_to_repl_s, b.comm.chem_to_repl_s);
  EXPECT_EQ(a.comm.trans_to_repl_s, b.comm.trans_to_repl_s);
  EXPECT_EQ(a.comm.phases, b.comm.phases);
  EXPECT_EQ(a.recovery.checkpoints, b.recovery.checkpoints);
  EXPECT_EQ(a.recovery.retransmissions, b.recovery.retransmissions);
  EXPECT_EQ(a.recovery.checkpoint_s, b.recovery.checkpoint_s);
  EXPECT_EQ(a.recovery.lost_work_s, b.recovery.lost_work_s);
  EXPECT_EQ(a.recovery.relayout_s, b.recovery.relayout_s);
  EXPECT_EQ(a.recovery.restore_s, b.recovery.restore_s);
  EXPECT_EQ(a.recovery.straggler_s, b.recovery.straggler_s);
  EXPECT_EQ(a.recovery.retransmit_s, b.recovery.retransmit_s);
  ASSERT_EQ(a.recovery.failures.size(), b.recovery.failures.size());
  for (std::size_t i = 0; i < a.recovery.failures.size(); ++i) {
    EXPECT_EQ(a.recovery.failures[i].node, b.recovery.failures[i].node);
    EXPECT_EQ(a.recovery.failures[i].hour, b.recovery.failures[i].hour);
    EXPECT_EQ(a.recovery.failures[i].lost_s, b.recovery.failures[i].lost_s);
  }
}

FaultPlan failing_plan(int nodes, int hours) {
  FaultModelOptions fopts;
  fopts.node_mtbf_hours = 40.0;
  fopts.slowdown_probability = 0.2;
  fopts.message_drop_probability = 0.05;
  for (std::uint64_t seed = 1; seed < 200; ++seed) {
    FaultPlan plan = FaultPlan::make(seed, nodes, hours, fopts);
    if (plan.has_failures()) return plan;
  }
  ADD_FAILURE() << "no failing seed found in 200 draws";
  return FaultPlan{};
}

TEST(HostParallelExecutor, FaultFreeReportsBitIdentical) {
  for (Strategy strategy :
       {Strategy::DataParallel, Strategy::TaskAndDataParallel}) {
    ExecutionConfig cfg;
    cfg.machine = intel_paragon();
    cfg.nodes = 16;
    cfg.strategy = strategy;
    cfg.host_threads = 1;
    const RunReport base = simulate_execution(shared_trace(), cfg);
    for (int threads : {2, 8}) {
      cfg.host_threads = threads;
      expect_identical_reports(base, simulate_execution(shared_trace(), cfg));
    }
  }
}

TEST(HostParallelExecutor, FaultReplayBitIdentical) {
  ExecutionConfig cfg;
  cfg.machine = intel_paragon();
  cfg.nodes = 16;
  cfg.faults =
      failing_plan(16, static_cast<int>(shared_trace().hours.size()));
  cfg.host_threads = 1;
  const RunReport base = simulate_execution(shared_trace(), cfg);
  EXPECT_FALSE(base.recovery.failures.empty());
  for (int threads : {2, 8}) {
    cfg.host_threads = threads;
    expect_identical_reports(base, simulate_execution(shared_trace(), cfg));
  }
}

TEST(HostParallelExecutor, PipelineStageTimesBitIdentical) {
  const HourStageTimes base = pipeline_stage_times(
      shared_trace(), intel_paragon(), 14, DimDist::Block, 1);
  for (int threads : {2, 8}) {
    const HourStageTimes st = pipeline_stage_times(
        shared_trace(), intel_paragon(), 14, DimDist::Block, threads);
    EXPECT_EQ(base.input_s, st.input_s);
    EXPECT_EQ(base.main_s, st.main_s);
    EXPECT_EQ(base.output_s, st.output_s);
  }
}

// ------------------------------------------------------ rate cache

TEST(RateCache, CachedAndUncachedRunsAreBitIdentical) {
  YoungBorisOptions cached;
  YoungBorisOptions uncached;
  uncached.cache_rates = false;
  ModelOptions a;
  a.hours = 2;
  a.chem = cached;
  ModelOptions b;
  b.hours = 2;
  b.chem = uncached;
  Dataset ds = test_basin_dataset();
  const ModelRunResult ra = AirshedModel(ds, a).run();
  const ModelRunResult rb = AirshedModel(ds, b).run();
  expect_identical(ra, rb);
}

TEST(RateCache, HitsOnRepeatedFrozenInputs) {
  YoungBorisSolver solver(Mechanism::cb4_condensed());
  std::vector<double> c(static_cast<std::size_t>(kSpeciesCount), 0.01);
  solver.integrate(c, 1.0, 298.15, 0.5);
  EXPECT_GT(solver.rate_evals(), 0);
  const long long evals_after_first = solver.rate_evals();
  std::vector<double> c2(static_cast<std::size_t>(kSpeciesCount), 0.02);
  solver.integrate(c2, 1.0, 298.15, 0.5);
  EXPECT_EQ(solver.rate_evals(), evals_after_first);
  EXPECT_GT(solver.rate_cache_hits(), 0);
}

TEST(RateCache, EpochChangeInvalidates) {
  YoungBorisSolver solver(Mechanism::cb4_condensed());
  std::vector<double> c(static_cast<std::size_t>(kSpeciesCount), 0.01);
  solver.set_rate_epoch(0);
  solver.integrate(c, 1.0, 298.15, 0.5);
  const long long evals = solver.rate_evals();
  solver.set_rate_epoch(1);
  std::vector<double> c2(static_cast<std::size_t>(kSpeciesCount), 0.01);
  solver.integrate(c2, 1.0, 298.15, 0.5);
  EXPECT_GT(solver.rate_evals(), evals);
}

// --------------------------------------------------------- checksums

TEST(Hash, DetectsSingleUlpDifference) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = a;
  b[1] = std::nextafter(b[1], 4.0);
  EXPECT_NE(fnv1a(std::span<const double>(a)),
            fnv1a(std::span<const double>(b)));
  EXPECT_EQ(fnv1a(std::span<const double>(a)),
            fnv1a(std::span<const double>(a)));
  EXPECT_EQ(hash_hex(0x0123456789abcdefULL), "0123456789abcdef");
}

}  // namespace
}  // namespace airshed
