// Property sweeps across environmental conditions and resolutions:
// invariants that must hold for ANY plausible input, not just the baseline
// scenarios.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "airshed/chem/youngboris.hpp"
#include "airshed/grid/multiscale.hpp"
#include "airshed/transport/supg.hpp"
#include "airshed/util/rng.hpp"
#include "airshed/util/stats.hpp"

namespace airshed {
namespace {

// ---------------------------------------------- chemistry invariant sweep

/// (temperature K x 10, sun x 100) so gtest params stay integral.
class ChemistryEnvironmentSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ChemistryEnvironmentSweep, ConservationAndPositivityHold) {
  const double temp_k = std::get<0>(GetParam()) / 10.0;
  const double sun = std::get<1>(GetParam()) / 100.0;

  // A randomized but reproducible polluted state.
  Rng rng(static_cast<std::uint64_t>(temp_k * 1000 + sun * 7919));
  std::vector<double> c(kSpeciesCount);
  for (int s = 0; s < kSpeciesCount; ++s) {
    c[s] = background_ppm(static_cast<Species>(s)) * rng.uniform(0.5, 2.0);
  }
  c[index_of(Species::NO)] += rng.uniform(0.0, 0.05);
  c[index_of(Species::NO2)] += rng.uniform(0.0, 0.05);
  c[index_of(Species::PAR)] += rng.uniform(0.0, 0.5);
  c[index_of(Species::OLE)] += rng.uniform(0.0, 0.02);
  c[index_of(Species::SO2)] += rng.uniform(0.0, 0.02);

  double n0 = 0.0, s0 = 0.0;
  for (int s = 0; s < kSpeciesCount; ++s) {
    n0 += c[s] * nitrogen_atoms(static_cast<Species>(s));
    s0 += c[s] * sulfur_atoms(static_cast<Species>(s));
  }

  YoungBorisSolver yb(Mechanism::cb4_condensed());
  const YoungBorisResult r = yb.integrate(c, 20.0, temp_k, sun);

  double n1 = 0.0, s1 = 0.0;
  for (int s = 0; s < kSpeciesCount; ++s) {
    EXPECT_GE(c[s], 0.0) << species_name(s);
    EXPECT_TRUE(std::isfinite(c[s])) << species_name(s);
    n1 += c[s] * nitrogen_atoms(static_cast<Species>(s));
    s1 += c[s] * sulfur_atoms(static_cast<Species>(s));
  }
  EXPECT_LT(relative_error(n0, n1), 1e-2)
      << "N not conserved at T=" << temp_k << " sun=" << sun;
  EXPECT_LT(relative_error(s0, s1), 1e-2)
      << "S not conserved at T=" << temp_k << " sun=" << sun;
  EXPECT_GT(r.substeps, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Conditions, ChemistryEnvironmentSweep,
    ::testing::Combine(::testing::Values(2680, 2880, 2980, 3100),  // K x 10
                       ::testing::Values(0, 20, 60, 100)));        // sun x 100

// --------------------------------------------- SUPG resolution convergence

TriMesh refined_mesh(int target) {
  MultiscaleGrid g(BBox{0, 0, 100, 100}, 4, 4, 4);
  g.refine_to_target([](Point2) { return 1.0; },
                     static_cast<std::size_t>(target));
  return g.triangulate();
}

/// Advects a Gaussian blob for a fixed time at a fixed wind and measures
/// the error against the exact translated solution.
double advection_error(const TriMesh& mesh) {
  SupgTransport op(mesh);
  const Point2 start{30.0, 50.0};
  const Point2 wind{20.0, 0.0};
  const double sigma = 9.0;
  const double t_total = 1.0;  // hours -> 20 km translation

  ConcentrationField f(1, 1, mesh.vertex_count(), 0.0);
  const auto pts = mesh.points();
  for (std::size_t v = 0; v < pts.size(); ++v) {
    const Point2 d = pts[v] - start;
    f(0, 0, v) = std::exp(-dot(d, d) / (2.0 * sigma * sigma));
  }
  std::vector<Point2> vel(mesh.vertex_count(), wind);
  const std::vector<double> bg = {0.0};
  for (int i = 0; i < 10; ++i) {
    op.advance_layer(f, 0, vel, 0.0, t_total / 10.0, bg);
  }

  const Point2 end{start.x + wind.x * t_total, start.y + wind.y * t_total};
  double err2 = 0.0, norm2 = 0.0;
  const auto lumped = mesh.lumped_area();
  for (std::size_t v = 0; v < pts.size(); ++v) {
    const Point2 d = pts[v] - end;
    const double exact = std::exp(-dot(d, d) / (2.0 * sigma * sigma));
    err2 += (f(0, 0, v) - exact) * (f(0, 0, v) - exact) * lumped[v];
    norm2 += exact * exact * lumped[v];
  }
  return std::sqrt(err2 / norm2);
}

TEST(SupgConvergence, ErrorDropsWithResolution) {
  const double coarse = advection_error(refined_mesh(150));
  const double medium = advection_error(refined_mesh(500));
  const double fine = advection_error(refined_mesh(1600));
  EXPECT_LT(medium, coarse);
  EXPECT_LT(fine, medium);
  EXPECT_LT(fine, 0.5) << "relative L2 error on the finest mesh";
}

// ----------------------------------------- solver time-step invariance

TEST(YoungBorisProperty, SplittingTheIntervalChangesLittle) {
  // Integrating 20 min in one call vs 4 x 5 min calls must agree (the
  // solver state is only the concentrations).
  std::vector<double> one(kSpeciesCount), four(kSpeciesCount);
  for (int s = 0; s < kSpeciesCount; ++s) {
    one[s] = four[s] = background_ppm(static_cast<Species>(s));
  }
  one[index_of(Species::NO)] = four[index_of(Species::NO)] = 0.02;
  one[index_of(Species::PAR)] = four[index_of(Species::PAR)] = 0.3;

  YoungBorisSolver a(Mechanism::cb4_condensed());
  YoungBorisSolver b(Mechanism::cb4_condensed());
  a.integrate(one, 20.0, 298.0, 0.8);
  for (int i = 0; i < 4; ++i) b.integrate(four, 5.0, 298.0, 0.8);
  for (Species s : {Species::O3, Species::NO2, Species::CO, Species::PAR}) {
    EXPECT_LT(relative_error(one[index_of(s)], four[index_of(s)]), 0.05)
        << species_name(s);
  }
}

}  // namespace
}  // namespace airshed
