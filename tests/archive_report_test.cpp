// Tests for the run archive (hourly field output) and report formatting.
#include <gtest/gtest.h>

#include <filesystem>

#include "airshed/core/model.hpp"
#include "airshed/core/report.hpp"
#include "airshed/io/archive.hpp"
#include "airshed/io/dataset.hpp"
#include "airshed/util/error.hpp"

namespace airshed {
namespace {

const ModelRunResult& shared_run() {
  static const ModelRunResult run = [] {
    Dataset ds = test_basin_dataset();
    ModelOptions opts;
    opts.hours = 2;
    return AirshedModel(ds, opts).run();
  }();
  return run;
}

RunArchive build_archive() {
  const Dataset ds = test_basin_dataset();
  RunArchive archive(ds.name(), kSpeciesCount, ds.layers(), ds.points());
  Dataset ds2 = test_basin_dataset();
  ModelOptions opts;
  opts.hours = 2;
  AirshedModel model(ds2, opts);
  model.run([&](const HourlyStats& st, const ConcentrationField& conc) {
    archive.append(st, conc);
  });
  return archive;
}

TEST(RunArchive, CollectsHoursThroughModelCallback) {
  const RunArchive archive = build_archive();
  EXPECT_EQ(archive.hour_count(), 2u);
  EXPECT_EQ(archive.dataset_name(), "TEST");
  EXPECT_EQ(archive.series_max_o3().size(), 2u);
  EXPECT_GT(archive.series_max_o3()[0], 0.0);
  EXPECT_GT(archive.series_mean_o3()[1], 0.0);
  // The final archived field matches the model's final output.
  EXPECT_EQ(archive.hour(1).conc, shared_run().outputs.conc);
}

TEST(RunArchive, SaveLoadRoundTripIsExact) {
  const RunArchive archive = build_archive();
  const std::string path =
      (std::filesystem::temp_directory_path() / "airshed_archive_test.arc")
          .string();
  archive.save(path);
  const RunArchive loaded = RunArchive::load(path);
  ASSERT_EQ(loaded.hour_count(), archive.hour_count());
  EXPECT_EQ(loaded.dataset_name(), archive.dataset_name());
  for (std::size_t h = 0; h < archive.hour_count(); ++h) {
    EXPECT_EQ(loaded.hour(h).conc, archive.hour(h).conc) << "hour " << h;
    EXPECT_DOUBLE_EQ(loaded.hour(h).stats.max_surface_o3_ppm,
                     archive.hour(h).stats.max_surface_o3_ppm);
    EXPECT_DOUBLE_EQ(loaded.hour(h).stats.total_pm_nitrate,
                     archive.hour(h).stats.total_pm_nitrate);
  }
  std::filesystem::remove(path);
}

TEST(RunArchive, RejectsShapeMismatchAndBadFiles) {
  RunArchive archive("X", 3, 2, 5);
  ConcentrationField wrong(3, 2, 6);
  EXPECT_THROW(archive.append(HourlyStats{}, wrong), Error);
  EXPECT_THROW(RunArchive::load("/nonexistent/archive.arc"), Error);
  EXPECT_THROW((void)archive.hour(0), Error);

  // A trace file is not an archive.
  const std::string path =
      (std::filesystem::temp_directory_path() / "not_an_archive.arc")
          .string();
  shared_run().trace.save(path);
  EXPECT_THROW(RunArchive::load(path), Error);
  std::filesystem::remove(path);
}

TEST(Report, SummaryMentionsEveryMajorPhase) {
  const RunReport r =
      simulate_execution(shared_run().trace, {cray_t3e(), 8});
  const std::string s = summarize_report(r);
  EXPECT_NE(s.find("chemistry"), std::string::npos);
  EXPECT_NE(s.find("transport"), std::string::npos);
  EXPECT_NE(s.find("I/O"), std::string::npos);
  EXPECT_NE(s.find("Cray T3E"), std::string::npos);
  EXPECT_NE(s.find("P=8"), std::string::npos);
}

TEST(Report, PhaseTableIsSortedDescending) {
  const RunReport r =
      simulate_execution(shared_run().trace, {cray_t3e(), 8});
  const Table t = phase_table(r);
  EXPECT_GT(t.row_count(), 4u);
  // Chemistry is the dominant phase and must come first.
  EXPECT_EQ(t.to_csv().find("chemistry"), t.to_csv().find("chemistry"));
  const std::string first_line =
      t.to_csv().substr(0, t.to_csv().find('\n', t.to_csv().find('\n') + 1));
  EXPECT_NE(first_line.find("hemistry"), std::string::npos);
}

TEST(Report, SweepTableCoversNodeCounts) {
  const Table t = sweep_table(shared_run().trace, cray_t3d(), {2, 4, 8});
  EXPECT_EQ(t.row_count(), 3u);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\n2,"), std::string::npos);
  EXPECT_NE(csv.find("\n8,"), std::string::npos);
}

}  // namespace
}  // namespace airshed
