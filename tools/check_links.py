#!/usr/bin/env python3
"""Check that relative links in the repo's markdown files resolve.

Scans every tracked *.md file for inline links and images
([text](target), ![alt](target)), ignores absolute URLs, and verifies
that each relative target exists on disk. Anchors (`#fragment`) into
markdown files — both same-file `#...` links and `other.md#...` — are
validated against the target file's headings using GitHub's
heading-slug rules (lowercase, punctuation stripped, spaces to
hyphens, `-N` suffixes for duplicates). Exits non-zero and lists every
broken link or anchor otherwise.

Usage: python3 tools/check_links.py [root]
"""
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.+?)\s*$")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {".git", "build", "traces", "node_modules"}


def markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not SKIP_DIRS.intersection(part for part in path.parts):
            yield path


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line (inline markup stripped)."""
    text = re.sub(r"!?\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # links -> text
    text = text.replace("`", "").replace("*", "").replace("_", " ")
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


_ANCHOR_CACHE: dict = {}


def heading_anchors(md: Path):
    """All anchors a markdown file defines (cached per file)."""
    if md in _ANCHOR_CACHE:
        return _ANCHOR_CACHE[md]
    anchors = set()
    seen: dict = {}
    in_fence = False
    for line in md.read_text(encoding="utf-8", errors="replace").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    _ANCHOR_CACHE[md] = anchors
    return anchors


def check_file(md: Path, root: Path):
    broken = []
    text = md.read_text(encoding="utf-8", errors="replace")
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES):
                continue
            plain, _, fragment = target.partition("#")
            plain = plain.split("?", 1)[0]
            if not plain:
                resolved = md  # pure '#anchor': points into this file
            elif plain.startswith("/"):
                resolved = root / plain.lstrip("/")
            else:
                resolved = md.parent / plain
            if not resolved.exists():
                broken.append((lineno, target, "broken link"))
                continue
            if fragment and resolved.suffix == ".md":
                if fragment.lower() not in heading_anchors(resolved):
                    broken.append((lineno, target, "broken anchor"))
    return broken


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    root = root.resolve()
    total_files = 0
    failures = 0
    for md in markdown_files(root):
        total_files += 1
        for lineno, target, why in check_file(md, root):
            print(f"{md.relative_to(root)}:{lineno}: {why} -> {target}")
            failures += 1
    print(f"checked {total_files} markdown files, {failures} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
