#!/usr/bin/env python3
"""Check that relative links in the repo's markdown files resolve.

Scans every tracked *.md file for inline links and images
([text](target), ![alt](target)), ignores absolute URLs and pure
anchors, and verifies that each relative target exists on disk
(anchors and query strings are stripped first). Exits non-zero and
lists every broken link otherwise.

Usage: python3 tools/check_links.py [root]
"""
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {".git", "build", "traces", "node_modules"}


def markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not SKIP_DIRS.intersection(part for part in path.parts):
            yield path


def check_file(md: Path, root: Path):
    broken = []
    text = md.read_text(encoding="utf-8", errors="replace")
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            plain = target.split("#", 1)[0].split("?", 1)[0]
            if not plain:
                continue
            if plain.startswith("/"):
                resolved = root / plain.lstrip("/")
            else:
                resolved = md.parent / plain
            if not resolved.exists():
                broken.append((lineno, target))
    return broken


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    root = root.resolve()
    total_files = 0
    failures = 0
    for md in markdown_files(root):
        total_files += 1
        for lineno, target in check_file(md, root):
            print(f"{md.relative_to(root)}:{lineno}: broken link -> {target}")
            failures += 1
    print(f"checked {total_files} markdown files, {failures} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
